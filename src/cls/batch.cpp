#include "cls/batch.hpp"

#include <vector>

#include "math/batch_inv.hpp"
#include "pairing/pairing.hpp"

namespace mccls::cls {

bool batch_verify(const SystemParams& params, std::string_view id, const ec::G1& public_key,
                  std::span<const BatchItem> items, crypto::HmacDrbg& rng,
                  GtCache* cache) {
  if (items.empty()) return true;

  // All signatures must carry the signer-static S; otherwise fall back to
  // rejecting (callers group by S before batching).
  const ec::G1& s = items.front().signature.s;
  for (const auto& item : items) {
    if (!(item.signature.s == s)) return false;
  }
  if (s.is_infinity()) return false;

  // First pass: challenges and blinding scalars. The n challenge inversions
  // h_i⁻¹ are deferred and done with ONE batched inversion below.
  std::vector<math::Fq> h_invs;
  std::vector<math::Fq> deltas;
  h_invs.reserve(items.size());
  deltas.reserve(items.size());
  for (const auto& item : items) {
    const math::Fq h = mccls_challenge(item.message, item.signature.r, public_key);
    if (h.is_zero()) return false;
    h_invs.push_back(h);
    // δ_i: random kDeltaBits-bit non-zero scalar.
    std::array<std::uint8_t, kDeltaBits / 8> raw;
    do {
      rng.generate(raw);
    } while (math::U256::from_be_bytes(raw).is_zero());
    deltas.push_back(math::Fq::from_u256(math::U256::from_be_bytes(raw)));
  }
  math::batch_invert(std::span<math::Fq>(h_invs));

  ec::G1 combined = ec::G1::infinity();
  math::Fq delta_sum = math::Fq::zero();
  for (std::size_t i = 0; i < items.size(); ++i) {
    // δ_i·h_i⁻¹·(V_i·P − h_i·R_i) = (δ_i·V_i/h_i)·P − δ_i·R_i, computed as
    // one simultaneous double-scalar multiplication (Shamir's trick).
    const math::Fq coeff_p = deltas[i] * items[i].signature.v * h_invs[i];
    combined += ec::G1::mul2(coeff_p.to_u256(), params.p, deltas[i].neg().to_u256(),
                             items[i].signature.r);
    delta_sum += deltas[i];
  }
  if (combined.is_infinity()) return false;

  const pairing::Gt lhs = pairing::pair(combined, s);
  const pairing::Gt base = cache != nullptr ? cache->get(params, id)
                                            : pairing::pair(params.p_pub, hash_id(id));
  return lhs == base.pow(delta_sum);
}

}  // namespace mccls::cls
