#include "cls/batch.hpp"

#include <array>
#include <utility>
#include <vector>

#include "math/batch_inv.hpp"

namespace mccls::cls {

std::optional<BatchEquation> batch_equation(const SystemParams& params,
                                            std::string_view id,
                                            const ec::G1& public_key,
                                            std::span<const BatchItem> items,
                                            crypto::HmacDrbg& rng, GtCache* cache) {
  if (items.empty()) return std::nullopt;

  // All signatures must carry the signer-static S; otherwise fall back to
  // rejecting (callers group by S before batching).
  const ec::G1& s = items.front().signature.s;
  for (const auto& item : items) {
    if (!(item.signature.s == s)) return std::nullopt;
  }
  if (s.is_infinity()) return std::nullopt;

  // First pass: challenges and blinding scalars. The n challenge inversions
  // h_i⁻¹ are deferred and done with ONE batched inversion below.
  std::vector<math::Fq> h_invs;
  std::vector<math::Fq> deltas;
  std::vector<math::U256> delta_raws;
  h_invs.reserve(items.size());
  deltas.reserve(items.size());
  delta_raws.reserve(items.size());
  for (const auto& item : items) {
    const math::Fq h = mccls_challenge(item.message, item.signature.r, public_key);
    if (h.is_zero()) return std::nullopt;
    h_invs.push_back(h);
    // δ_i: random kDeltaBits-bit non-zero scalar.
    std::array<std::uint8_t, kDeltaBits / 8> raw;
    do {
      rng.generate(raw);
    } while (math::U256::from_be_bytes(raw).is_zero());
    delta_raws.push_back(math::U256::from_be_bytes(raw));
    deltas.push_back(math::Fq::from_u256(delta_raws.back()));
  }
  math::batch_invert(std::span<math::Fq>(h_invs));

  // Second pass: the product point
  //   Σ_i δ_i·h_i⁻¹·(V_i·P − h_i·R_i)  =  (Σ_i δ_i·V_i·h_i⁻¹)·P + Σ_i δ_i·(−R_i)
  // regrouped so the shared base P takes ONE full-width multiplication
  // (fixed-base table when P is the generator) and the per-item terms ride a
  // single kDeltaBits-deep shared doubling chain — the δ_i are short by
  // construction, so negating the POINT R_i (not the scalar) keeps them
  // short. The old form paid a full 252-bit Shamir chain per item.
  math::Fq p_coeff = math::Fq::zero();
  math::Fq delta_sum = math::Fq::zero();
  std::vector<ec::G1> neg_rs;
  neg_rs.reserve(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    p_coeff += deltas[i] * items[i].signature.v * h_invs[i];
    neg_rs.push_back(items[i].signature.r.neg());
    delta_sum += deltas[i];
  }
  ec::G1 combined = params.p_is_generator() ? ec::G1::mul_generator(p_coeff)
                                            : params.p.mul(p_coeff);
  combined += ec::G1::msm(delta_raws, neg_rs);
  if (combined.is_infinity()) return std::nullopt;

  BatchEquation eq{combined, s, delta_sum, std::nullopt, ec::G1::infinity(),
                   ec::G1::infinity()};
  if (cache != nullptr) {
    eq.base = cache->get(params, id);
  } else {
    // No cached base: fold the right-hand side into the pairing product as
    // ê(−Σδ_i·Ppub, Q_ID) = ê(Ppub, Q_ID)^{−Σδ_i}.
    eq.rhs_point = params.p_pub.mul(delta_sum).neg();
    eq.q_id = hash_id(id);
  }
  return eq;
}

bool batch_equation_holds(const BatchEquation& eq) {
  if (eq.base) {
    // Cached base: one pairing against a (short-exponent) GT power.
    return pairing::pair(eq.combined, eq.s) == eq.base->pow(eq.delta_sum);
  }
  // Both sides need a Miller loop: evaluate the whole product with one
  // shared loop — the k = 2 denominator-elimination special case.
  const std::array<std::pair<ec::G1, ec::G1>, 2> product = {
      std::pair<ec::G1, ec::G1>{eq.combined, eq.s},
      std::pair<ec::G1, ec::G1>{eq.rhs_point, eq.q_id},
  };
  return pairing::multi_pair(product).is_one();
}

bool batch_verify(const SystemParams& params, std::string_view id, const ec::G1& public_key,
                  std::span<const BatchItem> items, crypto::HmacDrbg& rng,
                  GtCache* cache) {
  if (items.empty()) return true;
  const auto eq = batch_equation(params, id, public_key, items, rng, cache);
  return eq.has_value() && batch_equation_holds(*eq);
}

}  // namespace mccls::cls
