// Batch verification for McCLS — the extension suggested by the scheme's
// lineage (its basis, Yoon–Cheon–Kim, is a batch-verification IBS).
//
// For one signer, S = x⁻¹·D_ID is identical in every signature, so n
// signatures (V_i, S, R_i) on messages M_i verify together with a single
// pairing via the small-exponent test: with random non-zero δ_i,
//
//   ê( Σ_i δ_i·h_i⁻¹·(V_i·P − h_i·R_i),  S ) == ê(Ppub, Q_ID)^{Σ_i δ_i}
//
// A forged member makes equality fail except with probability ~2^-kDeltaBits.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "cls/mccls.hpp"
#include "cls/scheme.hpp"
#include "pairing/pairing.hpp"

namespace mccls::cls {

/// One entry of a batch: a message and its McCLS signature.
struct BatchItem {
  crypto::Bytes message;
  McclsSignature signature;
};

/// Bit width of the random small exponents δ_i (soundness 2^-64).
inline constexpr unsigned kDeltaBits = 64;

/// The assembled small-exponent test of one same-signer batch, before any
/// pairing is evaluated:  ê(combined, s) · rhs == 1,  with rhs either
/// base^{−delta_sum} (when the signer's base pairing was cached) or
/// ê(rhs_point, q_id) with rhs_point = −delta_sum·Ppub. Exposing the
/// operands lets the verifyd coalescer fold MANY groups' equations into one
/// multi_pair product sharing a single Miller loop.
struct BatchEquation {
  ec::G1 combined;
  ec::G1 s;
  math::Fq delta_sum;
  std::optional<pairing::Gt> base;  ///< cached ê(Ppub, Q_ID), if available
  ec::G1 rhs_point;                 ///< −delta_sum·Ppub; set iff !base
  ec::G1 q_id;                      ///< hash_id(id);     set iff !base
};

/// Derives the product equation for `items` (challenges, blinding scalars,
/// the regrouped MSM). Returns nullopt on structural rejection: mixed or
/// infinity S, zero challenge, or an infinity combined point.
std::optional<BatchEquation> batch_equation(const SystemParams& params,
                                            std::string_view id,
                                            const ec::G1& public_key,
                                            std::span<const BatchItem> items,
                                            crypto::HmacDrbg& rng,
                                            GtCache* cache = nullptr);

/// Evaluates one equation by itself (a k ≤ 2 multi_pair product).
[[nodiscard]] bool batch_equation_holds(const BatchEquation& eq);

/// Verifies all `items` as signatures by `id` / `public_key` (the single
/// McCLS point P_ID). Requires every signature to share the same S component
/// (signer-static); returns false otherwise, or when any member is invalid.
/// Randomness for the small exponents comes from `rng`.
///
/// Cost: 1 pairing + (n+1) scalar mults + 1 GT exponentiation, versus n
/// pairings for one-by-one verification. bench_batch measures the crossover.
bool batch_verify(const SystemParams& params, std::string_view id, const ec::G1& public_key,
                  std::span<const BatchItem> items, crypto::HmacDrbg& rng,
                  GtCache* cache = nullptr);

}  // namespace mccls::cls
