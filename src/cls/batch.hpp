// Batch verification for McCLS — the extension suggested by the scheme's
// lineage (its basis, Yoon–Cheon–Kim, is a batch-verification IBS).
//
// For one signer, S = x⁻¹·D_ID is identical in every signature, so n
// signatures (V_i, S, R_i) on messages M_i verify together with a single
// pairing via the small-exponent test: with random non-zero δ_i,
//
//   ê( Σ_i δ_i·h_i⁻¹·(V_i·P − h_i·R_i),  S ) == ê(Ppub, Q_ID)^{Σ_i δ_i}
//
// A forged member makes equality fail except with probability ~2^-kDeltaBits.
#pragma once

#include <span>
#include <vector>

#include "cls/mccls.hpp"
#include "cls/scheme.hpp"

namespace mccls::cls {

/// One entry of a batch: a message and its McCLS signature.
struct BatchItem {
  crypto::Bytes message;
  McclsSignature signature;
};

/// Bit width of the random small exponents δ_i (soundness 2^-64).
inline constexpr unsigned kDeltaBits = 64;

/// Verifies all `items` as signatures by `id` / `public_key` (the single
/// McCLS point P_ID). Requires every signature to share the same S component
/// (signer-static); returns false otherwise, or when any member is invalid.
/// Randomness for the small exponents comes from `rng`.
///
/// Cost: 1 pairing + (n+1) scalar mults + 1 GT exponentiation, versus n
/// pairings for one-by-one verification. bench_batch measures the crossover.
bool batch_verify(const SystemParams& params, std::string_view id, const ec::G1& public_key,
                  std::span<const BatchItem> items, crypto::HmacDrbg& rng,
                  GtCache* cache = nullptr);

}  // namespace mccls::cls
