// Canonical serialization of key material — the storage format used by
// mccls_cli and any application that persists KGC or user keys. Decoders
// are total: malformed input yields nullopt.
#pragma once

#include <optional>

#include "cls/keys.hpp"

namespace mccls::cls {

/// Master-key record: 32 bytes, big-endian canonical scalar.
crypto::Bytes encode_master_key(const math::Fq& s);
/// Rejects non-canonical (>= q) and zero scalars.
std::optional<math::Fq> decode_master_key(std::span<const std::uint8_t> bytes);

/// User-key record: id, partial key, secret value, public key.
crypto::Bytes encode_user_keys(const UserKeys& keys);
std::optional<UserKeys> decode_user_keys(std::span<const std::uint8_t> bytes);

}  // namespace mccls::cls
