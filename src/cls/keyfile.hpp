// Canonical serialization of key material — the storage format used by
// mccls_cli and any application that persists KGC or user keys. Decoders
// are total: malformed input yields nullopt.
#pragma once

#include <optional>

#include "cls/keys.hpp"

namespace mccls::cls {

/// Version byte leading the user-key record; decoders reject anything else
/// (mutation-fuzz finding: an unversioned record silently misparsed a
/// corrupted leading id-length as content). The master-key record stays an
/// exact 32-byte scalar — its fixed size already rejects every reframing.
inline constexpr std::uint8_t kUserKeysVersion = 1;

/// Cap on the identity field of a user-key record (same hardening rationale
/// as svc::kMaxIdLen: a hostile length prefix must be rejected from the
/// prefix alone, before any read or allocation).
inline constexpr std::size_t kMaxKeyfileIdLen = 1024;

/// Master-key record: 32 bytes, big-endian canonical scalar.
crypto::Bytes encode_master_key(const math::Fq& s);
/// Rejects non-canonical (>= q) and zero scalars.
std::optional<math::Fq> decode_master_key(std::span<const std::uint8_t> bytes);

/// User-key record: version byte, id, partial key, secret value, public key.
crypto::Bytes encode_user_keys(const UserKeys& keys);
std::optional<UserKeys> decode_user_keys(std::span<const std::uint8_t> bytes);

}  // namespace mccls::cls
