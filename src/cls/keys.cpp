#include "cls/keys.hpp"

#include <stdexcept>

#include "crypto/hash.hpp"

namespace mccls::cls {

namespace {
constexpr std::string_view kH1Domain = "mccls/H1/identity";
}

ec::G1 hash_id(std::string_view id) {
  return crypto::hash_to_g1(kH1Domain, crypto::as_bytes(id));
}

crypto::Bytes PublicKey::to_bytes() const {
  crypto::ByteWriter w;
  w.put_u8(static_cast<std::uint8_t>(points.size()));
  for (const auto& pt : points) w.put_raw(pt.to_bytes());
  return w.take();
}

std::optional<PublicKey> PublicKey::from_bytes(std::span<const std::uint8_t> bytes) {
  crypto::ByteReader r(bytes);
  const auto count = r.get_u8();
  if (!count || *count == 0 || *count > 2) return std::nullopt;
  PublicKey pk;
  for (std::uint8_t i = 0; i < *count; ++i) {
    const auto raw = r.get_raw(ec::G1::kEncodedSize);
    if (!raw) return std::nullopt;
    const auto pt = ec::G1::from_bytes(*raw);
    if (!pt) return std::nullopt;
    pk.points.push_back(*pt);
  }
  if (!r.exhausted()) return std::nullopt;
  return pk;
}

bool PublicKey::well_formed() const {
  if (points.empty() || points.size() > 2) return false;
  for (const ec::G1& point : points) {
    if (point.is_infinity() || !point.is_on_curve() || !point.in_subgroup()) return false;
  }
  return true;
}

Kgc Kgc::setup(crypto::HmacDrbg& rng) {
  return from_master_key(rng.next_nonzero_fq());
}

Kgc Kgc::from_master_key(const math::Fq& s) {
  if (s.is_zero()) throw std::invalid_argument("Kgc: master key must be non-zero");
  SystemParams params{.p = ec::G1::generator(), .p_pub = ec::G1::generator().mul(s)};
  return Kgc{s, std::move(params)};
}

ec::G1 Kgc::extract_partial_key(std::string_view id) const {
  return hash_id(id).mul(s_);
}

}  // namespace mccls::cls
