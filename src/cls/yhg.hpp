// YHG — the Yap–Heng–Goi certificateless signature (EUC Workshops 2006),
// reconstructed to match the operation counts of the paper's Table 1:
// Sign 2s (pairing-free), Verify 2p+3s, public key 1 point.
//
//   Keys:    Q_A = H1(ID), D_A = s·Q_A, secret x, P_A = x·P
//   Sign:    r ← Zq*; U = r·P; W = Hw(M, ID, P_A, U) ∈ G1;
//            V = D_A + (r + x)·W.  σ = (U, V)
//   Verify:  ê(P, V) == ê(Ppub, Q_A) · ê(U + P_A, W)
//
// Correctness: ê(P, D_A + (r+x)·W) = ê(Ppub, Q_A) · ê(P, W)^{r+x}
//            = ê(Ppub, Q_A) · ê((r+x)·P, W) = ê(Ppub, Q_A) · ê(U + P_A, W).
#pragma once

#include <optional>

#include "cls/scheme.hpp"

namespace mccls::cls {

/// Typed YHG signature σ = (U, V).
struct YhgSignature {
  ec::G1 u;
  ec::G1 v;

  static constexpr std::size_t kSize = ec::G1::kEncodedSize * 2;
  [[nodiscard]] crypto::Bytes to_bytes() const;
  static std::optional<YhgSignature> from_bytes(std::span<const std::uint8_t> bytes);
};

class Yhg final : public Scheme {
 public:
  [[nodiscard]] std::string_view name() const override { return "YHG"; }
  [[nodiscard]] OpCounts costs() const override {
    return OpCounts{.sign_pairings = 0,
                    .sign_scalar_mults = 2,
                    .verify_pairings = 2,
                    .verify_scalar_mults = 3,
                    .verify_exponentiations = 0,
                    .public_key_points = 1};
  }

  /// P_A = x·P.
  [[nodiscard]] PublicKey derive_public(const SystemParams& params,
                                        const math::Fq& secret) const override {
    return PublicKey{.points = {params.p.mul(secret)}};
  }

  [[nodiscard]] crypto::Bytes sign(const SystemParams& params, const UserKeys& signer,
                                   std::span<const std::uint8_t> message,
                                   crypto::HmacDrbg& rng) const override;
  [[nodiscard]] bool verify(const SystemParams& params, std::string_view id,
                            const PublicKey& public_key,
                            std::span<const std::uint8_t> message,
                            std::span<const std::uint8_t> signature,
                            GtCache* cache = nullptr) const override;
  [[nodiscard]] std::size_t signature_size() const override { return YhgSignature::kSize; }
};

}  // namespace mccls::cls
