#include "cls/zwxf.hpp"

#include "crypto/hash.hpp"
#include "pairing/pairing.hpp"

namespace mccls::cls {

namespace {

crypto::ByteWriter transcript(std::span<const std::uint8_t> message, std::string_view id,
                              const ec::G1& p_a, const ec::G1& u) {
  crypto::ByteWriter t;
  t.put_field(message);
  t.put_field(id);
  t.put_raw(p_a.to_bytes());
  t.put_raw(u.to_bytes());
  return t;
}

ec::G1 hash_w(std::span<const std::uint8_t> message, std::string_view id, const ec::G1& p_a,
              const ec::G1& u) {
  return crypto::hash_to_g1("zwxf/Hw", transcript(message, id, p_a, u));
}

ec::G1 hash_t(std::span<const std::uint8_t> message, std::string_view id, const ec::G1& p_a,
              const ec::G1& u) {
  return crypto::hash_to_g1("zwxf/Ht", transcript(message, id, p_a, u));
}

}  // namespace

crypto::Bytes ZwxfSignature::to_bytes() const {
  crypto::ByteWriter w;
  w.put_raw(u.to_bytes());
  w.put_raw(v.to_bytes());
  return w.take();
}

std::optional<ZwxfSignature> ZwxfSignature::from_bytes(std::span<const std::uint8_t> bytes) {
  if (bytes.size() != kSize) return std::nullopt;
  crypto::ByteReader reader(bytes);
  const auto u_raw = reader.get_raw(ec::G1::kEncodedSize);
  const auto v_raw = reader.get_raw(ec::G1::kEncodedSize);
  if (!u_raw || !v_raw) return std::nullopt;
  const auto u = ec::G1::from_bytes(*u_raw);
  const auto v = ec::G1::from_bytes(*v_raw);
  if (!u || !v) return std::nullopt;
  return ZwxfSignature{.u = *u, .v = *v};
}

crypto::Bytes Zwxf::sign(const SystemParams& params, const UserKeys& signer,
                         std::span<const std::uint8_t> message, crypto::HmacDrbg& rng) const {
  const math::Fq r = rng.next_nonzero_fq();
  const ec::G1 u = params.p.mul(r);
  const ec::G1& p_a = signer.public_key.primary();
  const ec::G1 w = hash_w(message, signer.id, p_a, u);
  const ec::G1 t = hash_t(message, signer.id, p_a, u);
  const ec::G1 v = signer.partial_key + w.mul(r) + t.mul(signer.secret);
  return ZwxfSignature{.u = u, .v = v}.to_bytes();
}

bool Zwxf::verify(const SystemParams& params, std::string_view id,
                  const PublicKey& public_key, std::span<const std::uint8_t> message,
                  std::span<const std::uint8_t> signature, GtCache* cache) const {
  if (public_key.points.size() != 1) return false;
  const auto sig = ZwxfSignature::from_bytes(signature);
  if (!sig) return false;
  const ec::G1& p_a = public_key.primary();
  const ec::G1 w = hash_w(message, id, p_a, sig->u);
  const ec::G1 t = hash_t(message, id, p_a, sig->u);
  const pairing::Gt lhs = pairing::pair(params.p, sig->v);
  const pairing::Gt rhs_id = cache != nullptr
                                 ? cache->get(params, id)
                                 : pairing::pair(params.p_pub, hash_id(id));
  const pairing::Gt rhs =
      rhs_id * pairing::pair(sig->u, w) * pairing::pair(p_a, t);
  return lhs == rhs;
}

}  // namespace mccls::cls
