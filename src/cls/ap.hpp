// AP — the Al-Riyami–Paterson certificateless signature (AsiaCrypt 2003),
// reconstructed to match the operation counts the paper's Table 1 reports
// for it: Sign 1p+3s, Verify 4p+1e, public key 2 points.
//
//   Keys:    Q_A = H1(ID), D_A = s·Q_A, secret x,
//            S_A = x·D_A (full private key), P_A = (X_A, Y_A) = (x·P, x·Ppub)
//   Sign:    a ← Zq*; w = ê(P,P)^a; v = H2(M, w); U = v·S_A + a·P.  σ = (U, v)
//   Verify:  (1) key-structure check ê(X_A, Ppub) == ê(Y_A, P)
//            (2) w' = ê(U,P) · ê(Q_A, Y_A)^{−v}; accept iff v == H2(M, w')
//
// Correctness: ê(U,P) = ê(Q_A,P)^{v·x·s} · ê(P,P)^a and
// ê(Q_A,Y_A)^{−v} = ê(Q_A,P)^{−v·x·s}, so w' = ê(P,P)^a = w.
#pragma once

#include <optional>

#include "cls/scheme.hpp"

namespace mccls::cls {

/// Typed AP signature σ = (U, v).
struct ApSignature {
  ec::G1 u;
  math::Fq v;

  static constexpr std::size_t kSize = ec::G1::kEncodedSize + 32;
  [[nodiscard]] crypto::Bytes to_bytes() const;
  static std::optional<ApSignature> from_bytes(std::span<const std::uint8_t> bytes);
};

class Ap final : public Scheme {
 public:
  [[nodiscard]] std::string_view name() const override { return "AP"; }
  [[nodiscard]] OpCounts costs() const override {
    return OpCounts{.sign_pairings = 1,
                    .sign_scalar_mults = 3,
                    .verify_pairings = 4,
                    .verify_scalar_mults = 0,
                    .verify_exponentiations = 1,
                    .public_key_points = 2};
  }

  /// (X_A, Y_A) = (x·P, x·Ppub) — the only two-point key in Table 1.
  [[nodiscard]] PublicKey derive_public(const SystemParams& params,
                                        const math::Fq& secret) const override {
    return PublicKey{.points = {params.p.mul(secret), params.p_pub.mul(secret)}};
  }

  [[nodiscard]] crypto::Bytes sign(const SystemParams& params, const UserKeys& signer,
                                   std::span<const std::uint8_t> message,
                                   crypto::HmacDrbg& rng) const override;
  [[nodiscard]] bool verify(const SystemParams& params, std::string_view id,
                            const PublicKey& public_key,
                            std::span<const std::uint8_t> message,
                            std::span<const std::uint8_t> signature,
                            GtCache* cache = nullptr) const override;
  [[nodiscard]] std::size_t signature_size() const override { return ApSignature::kSize; }
};

}  // namespace mccls::cls
