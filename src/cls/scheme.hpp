// Common interface over all four certificateless signature schemes, so the
// benchmarks (Table 1) and the secured-AODV extension can treat them
// uniformly via serialized signatures and public keys.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>

#include "cls/keys.hpp"
#include "crypto/drbg.hpp"
#include "crypto/encoding.hpp"
#include "pairing/gt.hpp"

namespace mccls::cls {

/// Operation counts as reported in the paper's Table 1 (claimed analytic
/// costs; bench_table1 prints these next to measured wall-clock times).
struct OpCounts {
  int sign_pairings = 0;
  int sign_scalar_mults = 0;
  int verify_pairings = 0;
  int verify_scalar_mults = 0;
  int verify_exponentiations = 0;
  int public_key_points = 1;  ///< public key length in G1 points
};

/// Read-through cache of ê(Ppub, Q_ID) — the identity-constant right-hand
/// side of the McCLS verification equation (and a term of ZWXF/YHG
/// verification). Implementations differ in their concurrency contract:
/// PairingCache below is single-threaded; svc::ShardedPairingCache is safe
/// for concurrent use. get() returns by value so an entry can never be
/// invalidated behind the caller's back by a concurrent or subsequent
/// insertion rehashing the underlying table.
class GtCache {
 public:
  virtual ~GtCache() = default;

  /// ê(Ppub, H1(id)); computed on first use, memoized afterwards.
  virtual pairing::Gt get(const SystemParams& params, std::string_view id) = 0;
};

/// Single-threaded GtCache backed by one unordered_map (e.g. one node's
/// neighbor set in the simulator).
class PairingCache final : public GtCache {
 public:
  pairing::Gt get(const SystemParams& params, std::string_view id) override;

  /// Precomputes entries for every identity in `ids` (e.g. a node's known
  /// neighbor set before a simulation round). The Miller loops run
  /// individually but all final exponentiations share ONE batched inversion
  /// (Montgomery's trick), so warming n identities costs a single modular
  /// inversion instead of n.
  void warm(const SystemParams& params, std::span<const std::string> ids);

  [[nodiscard]] std::size_t size() const { return cache_.size(); }
  void clear() { cache_.clear(); }

 private:
  std::unordered_map<std::string, pairing::Gt> cache_;
};

/// A certificateless signature scheme. Signatures cross this interface in
/// serialized form; concrete schemes also expose typed APIs.
class Scheme {
 public:
  virtual ~Scheme() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual OpCounts costs() const = 0;

  /// Derives the scheme-specific public key from the user's secret value x.
  [[nodiscard]] virtual PublicKey derive_public(const SystemParams& params,
                                                const math::Fq& secret) const = 0;

  /// Signs `message`; returns the serialized signature.
  [[nodiscard]] virtual crypto::Bytes sign(const SystemParams& params, const UserKeys& signer,
                                           std::span<const std::uint8_t> message,
                                           crypto::HmacDrbg& rng) const = 0;

  /// Verifies a serialized signature for (id, public_key, message).
  /// Malformed signatures verify false (never throw). `cache` is optional;
  /// when provided, identity-constant pairings are memoized across calls.
  [[nodiscard]] virtual bool verify(const SystemParams& params, std::string_view id,
                                    const PublicKey& public_key,
                                    std::span<const std::uint8_t> message,
                                    std::span<const std::uint8_t> signature,
                                    GtCache* cache = nullptr) const = 0;

  /// Serialized signature size in bytes (fixed per scheme).
  [[nodiscard]] virtual std::size_t signature_size() const = 0;

  /// Full Generate-Key-Pair: samples x and derives the public key.
  [[nodiscard]] UserKeys keygen(const SystemParams& params, std::string_view id,
                                const ec::G1& partial_key, crypto::HmacDrbg& rng) const {
    const math::Fq x = rng.next_nonzero_fq();
    return UserKeys{.id = std::string(id),
                    .partial_key = partial_key,
                    .secret = x,
                    .public_key = derive_public(params, x)};
  }

  /// One-call enrolment (extract partial key + keygen).
  [[nodiscard]] UserKeys enroll(const Kgc& kgc, std::string_view id,
                                crypto::HmacDrbg& rng) const {
    return keygen(kgc.params(), id, kgc.extract_partial_key(id), rng);
  }
};

}  // namespace mccls::cls
