#include "cls/threshold.hpp"

#include <stdexcept>
#include <unordered_set>

namespace mccls::cls {

ThresholdKgc ThresholdKgc::deal(std::size_t n, std::size_t t, crypto::HmacDrbg& rng) {
  if (t < 2 || t > n) throw std::invalid_argument("ThresholdKgc::deal: need 2 <= t <= n");

  // f(z) = s + a1·z + ... + a_{t-1}·z^{t-1}, coefficients uniform in Zq.
  std::vector<math::Fq> coeffs;
  coeffs.push_back(rng.next_nonzero_fq());  // s = f(0)
  for (std::size_t i = 1; i < t; ++i) coeffs.push_back(rng.next_fq());

  std::vector<KgcShare> shares;
  shares.reserve(n);
  for (std::size_t i = 1; i <= n; ++i) {
    // Horner evaluation at z = i.
    const math::Fq z = math::Fq::from_u64(i);
    math::Fq acc = math::Fq::zero();
    for (std::size_t c = coeffs.size(); c-- > 0;) acc = acc * z + coeffs[c];
    shares.push_back(KgcShare{.index = static_cast<std::uint32_t>(i), .value = acc});
  }

  SystemParams params{.p = ec::G1::generator(),
                      .p_pub = ec::G1::mul_generator(coeffs.front())};
  return ThresholdKgc{t, std::move(params), std::move(shares)};
}

PartialKeyShare ThresholdKgc::issue_share(const KgcShare& share, std::string_view id) {
  return PartialKeyShare{.index = share.index, .value = hash_id(id).mul(share.value)};
}

math::Fq ThresholdKgc::lagrange_at_zero(std::uint32_t index,
                                        const std::vector<std::uint32_t>& indices) {
  // λ_i(0) = Π_{j != i} (0 - x_j) / (x_i - x_j) = Π_{j != i} x_j / (x_j - x_i)
  math::Fq num = math::Fq::one();
  math::Fq den = math::Fq::one();
  const math::Fq xi = math::Fq::from_u64(index);
  for (const std::uint32_t j : indices) {
    if (j == index) continue;
    const math::Fq xj = math::Fq::from_u64(j);
    num *= xj;
    den *= xj - xi;
  }
  return num * den.inv();
}

std::optional<ec::G1> ThresholdKgc::combine(
    std::vector<PartialKeyShare> contributions) const {
  if (contributions.size() < t_) return std::nullopt;
  contributions.resize(t_);  // any t suffice; use the first t given
  std::vector<std::uint32_t> indices;
  std::unordered_set<std::uint32_t> seen;
  for (const auto& c : contributions) {
    if (c.index == 0 || !seen.insert(c.index).second) return std::nullopt;
    indices.push_back(c.index);
  }
  ec::G1 combined = ec::G1::infinity();
  for (const auto& c : contributions) {
    combined += c.value.mul(lagrange_at_zero(c.index, indices));
  }
  return combined;
}

}  // namespace mccls::cls
