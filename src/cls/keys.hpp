// Certificateless key infrastructure (paper §4, stages 1-3):
//   Setup                           -> SystemParams + master key held by the Kgc
//   Extract-Partial-Private-Key(ID) -> D_ID = s·H1(ID)
//   Generate-Key-Pair               -> secret x + scheme-specific public key
// The KGC never learns x, so it cannot sign on a user's behalf — the
// defining property of certificateless cryptography.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "crypto/drbg.hpp"
#include "crypto/encoding.hpp"
#include "ec/g1.hpp"
#include "math/fe.hpp"

namespace mccls::cls {

/// Public system parameters (P is the fixed group generator).
struct SystemParams {
  ec::G1 p;      ///< group generator
  ec::G1 p_pub;  ///< Ppub = s·P, the KGC's public key

  /// True iff `p` is the standard fixed generator, which unlocks the
  /// precomputed fixed-base table (G1::mul_generator) on the signing hot
  /// path. The full point comparison runs once and is cached, so per-call
  /// sign/verify no longer pays it.
  [[nodiscard]] bool p_is_generator() const {
    if (p_is_gen_cache_ < 0) {
      p_is_gen_cache_ = (p == ec::G1::generator()) ? 1 : 0;
    }
    return p_is_gen_cache_ == 1;
  }

  /// Lazy tri-state cache for p_is_generator() (-1 = unknown). Public only
  /// to keep the struct an aggregate; don't touch directly.
  mutable std::int8_t p_is_gen_cache_ = -1;
};

/// Q_ID = H1(ID): the identity's public "hash point".
ec::G1 hash_id(std::string_view id);

/// A scheme public key: one G1 point for McCLS/ZWXF/YHG, two for AP
/// (Table 1's "PubKey Len" row).
struct PublicKey {
  std::vector<ec::G1> points;

  /// The first (for most schemes, only) point.
  [[nodiscard]] const ec::G1& primary() const { return points.at(0); }

  [[nodiscard]] crypto::Bytes to_bytes() const;
  static std::optional<PublicKey> from_bytes(std::span<const std::uint8_t> bytes);

  /// Structural validity for directory admission: 1 or 2 points, each
  /// on-curve, in the order-q subgroup, and not infinity. from_bytes only
  /// checks curve membership (the cheap part); a key directory must also
  /// exclude small-order points — the class of inputs behind the AP
  /// 2-torsion-translation finding (see tests/test_qa_negative.cpp).
  [[nodiscard]] bool well_formed() const;

  friend bool operator==(const PublicKey&, const PublicKey&) = default;
};

/// Key Generation Center. Holds the master secret s; issues partial private
/// keys bound to identities.
class Kgc {
 public:
  /// Runs Setup with randomness from `rng`.
  static Kgc setup(crypto::HmacDrbg& rng);

  /// Reconstructs a KGC from a stored master key (key-file loading).
  /// Throws std::invalid_argument on a zero key.
  static Kgc from_master_key(const math::Fq& s);

  [[nodiscard]] const SystemParams& params() const { return params_; }

  /// D_ID = s·H1(ID).
  [[nodiscard]] ec::G1 extract_partial_key(std::string_view id) const;

  /// The master key; exposed for the Type-II adversary tests only.
  [[nodiscard]] const math::Fq& master_key_for_tests() const { return s_; }

 private:
  Kgc(math::Fq s, SystemParams params) : s_(s), params_(std::move(params)) {}

  math::Fq s_;
  SystemParams params_;
};

/// Everything one user holds: identity, KGC-issued partial key, self-chosen
/// secret value, and the scheme-derived public key.
struct UserKeys {
  std::string id;
  ec::G1 partial_key;    ///< D_ID = s·Q_ID (from the KGC)
  math::Fq secret;       ///< x, chosen by the user (the paper's S_ID)
  PublicKey public_key;  ///< scheme-specific (see Scheme::derive_public)
};

}  // namespace mccls::cls
