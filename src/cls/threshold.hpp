// Threshold KGC: the master key s is Shamir-shared among n share-holders so
// that any t of them can jointly issue a partial private key, and fewer
// than t learn nothing. This is the standard answer to "who runs the KGC in
// an infrastructure-less MANET" — the distributed key management of
// Zhou-Haas [18] and Deng-Mukherjee-Agrawal [5] in the paper's related
// work, applied to the certificateless setting.
//
//   deal:     f(z) = s + a₁z + ... + a_{t-1}z^{t-1} over Zq,
//             share_i = f(i) for i = 1..n
//   issue:    D_i = share_i · Q_ID                       (per share-holder)
//   combine:  D_ID = Σ λ_i · D_i,  λ_i Lagrange at 0     (any t of them)
//
// The combined D_ID is byte-identical to what the centralized KGC issues,
// so users and verifiers are oblivious to the thresholdization.
#pragma once

#include <vector>

#include "cls/keys.hpp"

namespace mccls::cls {

/// One share-holder's state: index (the Shamir x-coordinate, >= 1) and the
/// secret share f(index).
struct KgcShare {
  std::uint32_t index = 0;
  math::Fq value;
};

/// A share-holder's contribution toward one identity's partial private key.
struct PartialKeyShare {
  std::uint32_t index = 0;
  ec::G1 value;  ///< share_i · Q_ID
};

class ThresholdKgc {
 public:
  /// Splits a fresh master key into n shares with threshold t
  /// (2 <= t <= n). The dealt SystemParams match a centralized KGC with the
  /// same master key. Throws std::invalid_argument on bad (t, n).
  static ThresholdKgc deal(std::size_t n, std::size_t t, crypto::HmacDrbg& rng);

  [[nodiscard]] const SystemParams& params() const { return params_; }
  [[nodiscard]] const std::vector<KgcShare>& shares() const { return shares_; }
  [[nodiscard]] std::size_t threshold() const { return t_; }

  /// One share-holder's contribution for `id`.
  static PartialKeyShare issue_share(const KgcShare& share, std::string_view id);

  /// Combines >= t distinct contributions into D_ID. Returns nullopt when
  /// given fewer than t shares or duplicate indices. Any t-subset works.
  [[nodiscard]] std::optional<ec::G1> combine(
      std::vector<PartialKeyShare> contributions) const;

  /// Lagrange coefficient λ_i evaluated at 0 for the given index set
  /// (exposed for tests).
  static math::Fq lagrange_at_zero(std::uint32_t index,
                                   const std::vector<std::uint32_t>& indices);

 private:
  ThresholdKgc(std::size_t t, SystemParams params, std::vector<KgcShare> shares)
      : t_(t), params_(std::move(params)), shares_(std::move(shares)) {}

  std::size_t t_;
  SystemParams params_;
  std::vector<KgcShare> shares_;
};

}  // namespace mccls::cls
