// Name-based access to all implemented CLS schemes, in the order the paper's
// Table 1 lists them. Used by bench_table1 and the scenario runner.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "cls/scheme.hpp"

namespace mccls::cls {

/// Creates a scheme by its Table 1 name ("AP", "ZWXF", "YHG", "McCLS");
/// returns nullptr for unknown names.
std::unique_ptr<Scheme> make_scheme(std::string_view name);

/// All scheme names in Table 1 order.
std::vector<std::string_view> scheme_names();

}  // namespace mccls::cls
