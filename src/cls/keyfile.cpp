#include "cls/keyfile.hpp"

namespace mccls::cls {

crypto::Bytes encode_master_key(const math::Fq& s) {
  crypto::ByteWriter w;
  w.put_raw(s.to_u256().to_be_bytes());
  return w.take();
}

std::optional<math::Fq> decode_master_key(std::span<const std::uint8_t> bytes) {
  if (bytes.size() != 32) return std::nullopt;
  const math::U256 v = math::U256::from_be_bytes(bytes);
  if (cmp(v, math::Fq::modulus()) >= 0 || v.is_zero()) return std::nullopt;
  return math::Fq::from_u256(v);
}

crypto::Bytes encode_user_keys(const UserKeys& keys) {
  crypto::ByteWriter w;
  w.put_u8(kUserKeysVersion);
  w.put_field(keys.id);
  w.put_raw(keys.partial_key.to_bytes());
  w.put_raw(keys.secret.to_u256().to_be_bytes());
  w.put_field(keys.public_key.to_bytes());
  return w.take();
}

std::optional<UserKeys> decode_user_keys(std::span<const std::uint8_t> bytes) {
  crypto::ByteReader r(bytes);
  const auto version = r.get_u8();
  if (!version || *version != kUserKeysVersion) return std::nullopt;
  const auto id = r.get_field(kMaxKeyfileIdLen);
  const auto partial_raw = r.get_raw(ec::G1::kEncodedSize);
  const auto secret_raw = r.get_raw(32);
  const auto pk_raw = r.get_field();
  if (!id || !partial_raw || !secret_raw || !pk_raw || !r.exhausted()) return std::nullopt;
  const auto partial = ec::G1::from_bytes(*partial_raw);
  const math::U256 secret_int = math::U256::from_be_bytes(*secret_raw);
  const auto pk = PublicKey::from_bytes(*pk_raw);
  if (!partial || !pk || cmp(secret_int, math::Fq::modulus()) >= 0 || secret_int.is_zero()) {
    return std::nullopt;
  }
  return UserKeys{.id = std::string(id->begin(), id->end()),
                  .partial_key = *partial,
                  .secret = math::Fq::from_u256(secret_int),
                  .public_key = *pk};
}

}  // namespace mccls::cls
