#include "cls/scheme.hpp"

#include <vector>

#include "pairing/pairing.hpp"

namespace mccls::cls {

pairing::Gt PairingCache::get(const SystemParams& params, std::string_view id) {
  const auto it = cache_.find(std::string(id));
  if (it != cache_.end()) return it->second;
  auto [inserted, _] =
      cache_.emplace(std::string(id), pairing::pair(params.p_pub, hash_id(id)));
  return inserted->second;
}

void PairingCache::warm(const SystemParams& params, std::span<const std::string> ids) {
  // Collect the Miller values of the identities we don't know yet, then
  // reduce them with one batched final exponentiation (a single inversion).
  std::vector<const std::string*> missing;
  std::vector<math::Fp2> fs;
  for (const std::string& id : ids) {
    if (cache_.contains(id)) continue;
    missing.push_back(&id);
    fs.push_back(pairing::miller_loop(params.p_pub, hash_id(id)));
  }
  const std::vector<pairing::Gt> gts = pairing::final_exponentiation_batch(fs);
  for (std::size_t i = 0; i < missing.size(); ++i) {
    cache_.emplace(*missing[i], gts[i]);
  }
}

}  // namespace mccls::cls
