#include "cls/scheme.hpp"

#include "pairing/pairing.hpp"

namespace mccls::cls {

const pairing::Gt& PairingCache::get(const SystemParams& params, std::string_view id) {
  const auto it = cache_.find(std::string(id));
  if (it != cache_.end()) return it->second;
  auto [inserted, _] =
      cache_.emplace(std::string(id), pairing::pair(params.p_pub, hash_id(id)));
  return inserted->second;
}

}  // namespace mccls::cls
