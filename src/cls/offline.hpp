// Online/offline McCLS signing — the optimization the paper's reference
// [12] (Xu-Mu-Susilo, ACISP 2006) applies to AODV routing security, adapted
// to McCLS. Everything message-independent is precomputed in idle time:
//
//   offline: r ← Zq*, R = (r − x)·P            (the scalar multiplication)
//   online:  h = H2(M, R, P_ID), V = h·r       (one hash + one field multiply)
//
// S = x⁻¹·D_ID is signer-static and computed once. The online phase runs in
// microseconds — the property CPS deadline-bound control loops need
// (bench_table1's Sign vs bench_primitives' field-mult cost).
#pragma once

#include <deque>

#include "cls/mccls.hpp"

namespace mccls::cls {

class McclsOfflineSigner {
 public:
  /// Captures the signer's keys; `params` must outlive the signer.
  McclsOfflineSigner(const SystemParams& params, UserKeys signer);

  /// Precomputes `count` signing tokens (idle-time work).
  void precompute(std::size_t count, crypto::HmacDrbg& rng);

  [[nodiscard]] std::size_t tokens_available() const { return pool_.size(); }

  /// Signs using a precomputed token; when the pool is empty, falls back to
  /// computing a token inline (equivalent to ordinary signing).
  [[nodiscard]] McclsSignature sign(std::span<const std::uint8_t> message,
                                    crypto::HmacDrbg& rng);

 private:
  struct Token {
    math::Fq r;
    ec::G1 big_r;  ///< (r − x)·P
  };

  Token make_token(crypto::HmacDrbg& rng) const;

  const SystemParams& params_;
  UserKeys signer_;
  ec::G1 s_;  ///< x⁻¹·D_ID, signer-static
  std::deque<Token> pool_;
};

}  // namespace mccls::cls
