#include "cls/offline.hpp"

namespace mccls::cls {

McclsOfflineSigner::McclsOfflineSigner(const SystemParams& params, UserKeys signer)
    : params_(params),
      signer_(std::move(signer)),
      s_(signer_.partial_key.mul(signer_.secret.inv())) {}

McclsOfflineSigner::Token McclsOfflineSigner::make_token(crypto::HmacDrbg& rng) const {
  const bool base_is_generator = params_.p == ec::G1::generator();
  for (;;) {
    const math::Fq r = rng.next_nonzero_fq();
    const math::Fq exponent = r - signer_.secret;
    if (exponent.is_zero()) continue;  // r == x would leak R = O
    return Token{.r = r,
                 .big_r = base_is_generator ? ec::G1::mul_generator(exponent)
                                            : params_.p.mul(exponent)};
  }
}

void McclsOfflineSigner::precompute(std::size_t count, crypto::HmacDrbg& rng) {
  for (std::size_t i = 0; i < count; ++i) pool_.push_back(make_token(rng));
}

McclsSignature McclsOfflineSigner::sign(std::span<const std::uint8_t> message,
                                        crypto::HmacDrbg& rng) {
  for (;;) {
    Token token;
    if (pool_.empty()) {
      token = make_token(rng);
    } else {
      token = pool_.front();
      pool_.pop_front();
    }
    const math::Fq h =
        mccls_challenge(message, token.big_r, signer_.public_key.primary());
    if (h.is_zero()) continue;  // negligible; burn the token and retry
    return McclsSignature{.v = h * token.r, .s = s_, .r = token.big_r};
  }
}

}  // namespace mccls::cls
