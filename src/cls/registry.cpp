#include "cls/registry.hpp"

#include "cls/ap.hpp"
#include "cls/mccls.hpp"
#include "cls/yhg.hpp"
#include "cls/zwxf.hpp"

namespace mccls::cls {

std::unique_ptr<Scheme> make_scheme(std::string_view name) {
  if (name == "AP") return std::make_unique<Ap>();
  if (name == "ZWXF") return std::make_unique<Zwxf>();
  if (name == "YHG") return std::make_unique<Yhg>();
  if (name == "McCLS") return std::make_unique<Mccls>();
  return nullptr;
}

std::vector<std::string_view> scheme_names() { return {"AP", "ZWXF", "YHG", "McCLS"}; }

}  // namespace mccls::cls
