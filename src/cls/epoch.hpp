// Key revocation for certificateless systems, the Al-Riyami–Paterson way:
// there are no certificates to revoke, so identities are time-scoped —
// the effective signing identity is "ID‖epoch", and the KGC simply stops
// issuing partial keys for a revoked ID when the epoch rolls over. Verifiers
// reject signatures whose epoch is not current.
//
// This header provides the canonical identity-scoping used by all of this
// repository's schemes (they treat the scoped string as the identity).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace mccls::cls {

/// A revocation epoch (e.g. an hour/day counter in deployment).
using Epoch = std::uint64_t;

/// The scoping separator. Exported so admission layers (kgc wire decode,
/// Kgcd::enroll) can reject identities that would make scoped_identity
/// throw, instead of discovering the collision mid-request.
inline constexpr std::string_view kEpochSeparator = "@epoch-";

/// Canonical scoped identity "ID@epoch-N". The '@epoch-' separator cannot
/// appear in the result of scoping (scoping twice throws), so scoped and
/// unscoped identities never collide.
std::string scoped_identity(std::string_view id, Epoch epoch);

/// Splits a scoped identity back into (id, epoch); nullopt if `scoped` is
/// not in canonical form.
std::optional<std::pair<std::string, Epoch>> parse_scoped_identity(std::string_view scoped);

/// Verifier-side policy: accept signatures from `epoch` when the current
/// epoch is `now`, allowing `grace` trailing epochs for clock skew.
bool epoch_acceptable(Epoch epoch, Epoch now, Epoch grace = 1);

}  // namespace mccls::cls
