#include "cls/mccls.hpp"

#include "crypto/hash.hpp"
#include "pairing/pairing.hpp"

namespace mccls::cls {

namespace {
constexpr std::string_view kH2Domain = "mccls/H2/challenge";
}

math::Fq mccls_challenge(std::span<const std::uint8_t> message, const ec::G1& r,
                         const ec::G1& public_key) {
  crypto::ByteWriter w;
  w.put_field(message);
  w.put_raw(r.to_bytes());
  w.put_raw(public_key.to_bytes());
  return crypto::hash_to_fq(kH2Domain, w);
}

crypto::Bytes McclsSignature::to_bytes() const {
  crypto::ByteWriter w;
  w.put_raw(v.to_u256().to_be_bytes());
  w.put_raw(s.to_bytes());
  w.put_raw(r.to_bytes());
  return w.take();
}

std::optional<McclsSignature> McclsSignature::from_bytes(std::span<const std::uint8_t> bytes) {
  if (bytes.size() != kSize) return std::nullopt;
  crypto::ByteReader reader(bytes);
  const auto v_raw = reader.get_raw(32);
  const auto s_raw = reader.get_raw(ec::G1::kEncodedSize);
  const auto r_raw = reader.get_raw(ec::G1::kEncodedSize);
  if (!v_raw || !s_raw || !r_raw) return std::nullopt;
  const math::U256 v_int = math::U256::from_be_bytes(*v_raw);
  if (cmp(v_int, math::Fq::modulus()) >= 0) return std::nullopt;  // non-canonical
  const auto s = ec::G1::from_bytes(*s_raw);
  const auto r = ec::G1::from_bytes(*r_raw);
  if (!s || !r) return std::nullopt;
  return McclsSignature{.v = math::Fq::from_u256(v_int), .s = *s, .r = *r};
}

McclsSignature Mccls::sign_typed(const SystemParams& params, const UserKeys& signer,
                                 std::span<const std::uint8_t> message,
                                 crypto::HmacDrbg& rng) {
  const bool base_is_generator = params.p_is_generator();
  for (;;) {
    const math::Fq r = rng.next_nonzero_fq();
    // R = (r − x)·P, via the fixed-base table on the standard generator.
    const math::Fq exponent = r - signer.secret;
    const ec::G1 big_r =
        base_is_generator ? ec::G1::mul_generator(exponent) : params.p.mul(exponent);
    const math::Fq h = mccls_challenge(message, big_r, signer.public_key.primary());
    if (h.is_zero()) continue;  // h must be invertible for verification
    return McclsSignature{
        .v = h * r,
        .s = signer.partial_key.mul(signer.secret.inv()),
        .r = big_r,
    };
  }
}

bool Mccls::verify_typed(const SystemParams& params, std::string_view id,
                         const ec::G1& public_key, std::span<const std::uint8_t> message,
                         const McclsSignature& sig, GtCache* cache) {
  const math::Fq h = mccls_challenge(message, sig.r, public_key);
  if (h.is_zero()) return false;
  // Left side of the DH-tuple check: ê(V·P − h·R, h⁻¹·S), computed as one
  // simultaneous double-scalar multiplication V·P + (−h)·R.
  const ec::G1 left_point =
      ec::G1::mul2(sig.v.to_u256(), params.p, h.neg().to_u256(), sig.r);
  const ec::G1 s_over_h = sig.s.mul(h.inv());
  if (left_point.is_infinity() || s_over_h.is_infinity()) return false;
  const pairing::Gt lhs = pairing::pair(left_point, s_over_h);
  if (cache != nullptr) return lhs == cache->get(params, id);
  return lhs == pairing::pair(params.p_pub, hash_id(id));
}

crypto::Bytes Mccls::sign(const SystemParams& params, const UserKeys& signer,
                          std::span<const std::uint8_t> message, crypto::HmacDrbg& rng) const {
  return sign_typed(params, signer, message, rng).to_bytes();
}

bool Mccls::verify(const SystemParams& params, std::string_view id,
                   const PublicKey& public_key, std::span<const std::uint8_t> message,
                   std::span<const std::uint8_t> signature, GtCache* cache) const {
  if (public_key.points.size() != 1) return false;
  const auto sig = McclsSignature::from_bytes(signature);
  if (!sig) return false;
  return verify_typed(params, id, public_key.primary(), message, *sig, cache);
}

}  // namespace mccls::cls
