#include "cls/ap.hpp"

#include "crypto/hash.hpp"
#include "pairing/pairing.hpp"

namespace mccls::cls {

namespace {

constexpr std::string_view kH2Domain = "ap/H2/challenge";

/// v = H2(M, w) with w ∈ GT.
math::Fq ap_challenge(std::span<const std::uint8_t> message, const pairing::Gt& w) {
  crypto::ByteWriter t;
  t.put_field(message);
  t.put_raw(w.to_bytes());
  return crypto::hash_to_fq(kH2Domain, t);
}

/// ê(P, P) for the fixed group generator — constant across all parameter sets.
const pairing::Gt& base_pairing() {
  static const pairing::Gt g = pairing::pair(ec::G1::generator(), ec::G1::generator());
  return g;
}

}  // namespace

crypto::Bytes ApSignature::to_bytes() const {
  crypto::ByteWriter w;
  w.put_raw(u.to_bytes());
  w.put_raw(v.to_u256().to_be_bytes());
  return w.take();
}

std::optional<ApSignature> ApSignature::from_bytes(std::span<const std::uint8_t> bytes) {
  if (bytes.size() != kSize) return std::nullopt;
  crypto::ByteReader reader(bytes);
  const auto u_raw = reader.get_raw(ec::G1::kEncodedSize);
  const auto v_raw = reader.get_raw(32);
  if (!u_raw || !v_raw) return std::nullopt;
  const auto u = ec::G1::from_bytes(*u_raw);
  if (!u) return std::nullopt;
  const math::U256 v_int = math::U256::from_be_bytes(*v_raw);
  if (cmp(v_int, math::Fq::modulus()) >= 0) return std::nullopt;
  return ApSignature{.u = *u, .v = math::Fq::from_u256(v_int)};
}

crypto::Bytes Ap::sign(const SystemParams& params, const UserKeys& signer,
                       std::span<const std::uint8_t> message, crypto::HmacDrbg& rng) const {
  const math::Fq a = rng.next_nonzero_fq();
  const pairing::Gt w = base_pairing().pow(a);  // ê(P,P)^a: the "1p" of Table 1
  const math::Fq v = ap_challenge(message, w);
  // Full private key S_A = x·D_A; U = v·S_A + a·P.
  const ec::G1 s_a = signer.partial_key.mul(signer.secret);
  const ec::G1 u = s_a.mul(v) + params.p.mul(a);
  return ApSignature{.u = u, .v = v}.to_bytes();
}

bool Ap::verify(const SystemParams& params, std::string_view id, const PublicKey& public_key,
                std::span<const std::uint8_t> message,
                std::span<const std::uint8_t> signature, GtCache* /*cache*/) const {
  if (public_key.points.size() != 2) return false;
  const auto sig = ApSignature::from_bytes(signature);
  if (!sig) return false;
  const ec::G1& x_a = public_key.points[0];
  const ec::G1& y_a = public_key.points[1];
  // (0) Subgroup membership. Unlike the other Table 1 schemes, AP's
  // challenge v = H2(M, w) never binds the public-key bytes, and the final
  // exponentiation annihilates any 2-torsion component of a pairing
  // argument — so without this check a key translated by the 2-torsion
  // point (0,0) passes both equations below unchanged (found by the qa
  // negative-vector suite; #E = 4q, points must lie in the order-q part).
  if (!x_a.in_subgroup() || !y_a.in_subgroup()) return false;
  // (1) Key-structure check: the two halves must commit to the same secret.
  if (pairing::pair(x_a, params.p_pub) != pairing::pair(y_a, params.p)) return false;
  // (2) Recover w and recompute the challenge.
  const ec::G1 q_a = hash_id(id);
  const pairing::Gt w = pairing::pair(sig->u, params.p) *
                        pairing::pair(q_a, y_a).pow(sig->v).inv();
  return ap_challenge(message, w) == sig->v;
}

}  // namespace mccls::cls
