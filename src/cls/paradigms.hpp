// The two public-key paradigms the paper's introduction positions McCLS
// against, implemented on the same pairing substrate so the trade-offs can
// be measured rather than asserted:
//
//  * BlsPki      — traditional PKI: BLS signatures plus an explicit
//                  certificate (the CA's BLS signature over id‖pk). Brings
//                  certificate transport + verification cost — the
//                  "complex certificate management" the paper criticizes.
//  * ChaCheonIbs — identity-based signatures (Cha-Cheon, PKC 2003): no
//                  certificates, but the PKG holds every user's full
//                  signing key — the key-escrow problem
//                  (tests demonstrate the PKG forging).
//
// Certificateless schemes (cls/mccls.hpp et al.) sit between the two:
// no certificates and no escrow. bench_paradigms quantifies all three.
#pragma once

#include <optional>

#include "cls/keys.hpp"

namespace mccls::cls {

// ------------------------------------------------------------------- BLS

/// BLS signature: σ = x·H(M); verify ê(σ, P) == ê(H(M), X).
struct BlsKeyPair {
  math::Fq secret;
  ec::G1 public_key;  ///< X = x·P
};

BlsKeyPair bls_keygen(crypto::HmacDrbg& rng);
ec::G1 bls_sign(const math::Fq& secret, std::span<const std::uint8_t> message);
bool bls_verify(const ec::G1& public_key, std::span<const std::uint8_t> message,
                const ec::G1& signature);

// ------------------------------------------------------------- PKI layer

/// A certificate: the CA's BLS signature binding an identity to a key.
struct Certificate {
  std::string id;
  ec::G1 subject_key;
  ec::G1 ca_signature;
};

class BlsPki {
 public:
  explicit BlsPki(crypto::HmacDrbg& rng) : ca_(bls_keygen(rng)) {}

  [[nodiscard]] const ec::G1& ca_public_key() const { return ca_.public_key; }

  /// CA-side: issue a certificate for (id, key).
  [[nodiscard]] Certificate issue(std::string_view id, const ec::G1& subject_key) const;

  /// Verifier-side: check the certificate chain, then the message signature.
  /// This is the paradigm's full per-message cost (4 pairings; 2 with a
  /// per-identity certificate cache, mirroring PairingCache usage).
  [[nodiscard]] bool verify_signed_message(const Certificate& cert,
                                           std::span<const std::uint8_t> message,
                                           const ec::G1& signature) const;

  [[nodiscard]] bool verify_certificate(const Certificate& cert) const;

 private:
  BlsKeyPair ca_;
};

// ------------------------------------------------------------------- IBS

/// Cha-Cheon identity-based signature:
///   keys:   D_ID = s·H1(ID) issued by the PKG (escrowed!)
///   sign:   r ← Zq*; U = r·Q_ID; h = H2(M, U); V = (r + h)·D_ID
///   verify: ê(V, P) == ê(U + h·Q_ID, Ppub)
struct IbsSignature {
  ec::G1 u;
  ec::G1 v;
};

class ChaCheonIbs {
 public:
  explicit ChaCheonIbs(crypto::HmacDrbg& rng);

  [[nodiscard]] const ec::G1& ppub() const { return p_pub_; }

  /// PKG-side: extract the (escrowed) signing key for an identity.
  [[nodiscard]] ec::G1 extract(std::string_view id) const;

  static IbsSignature sign(const ec::G1& d_id, std::string_view id,
                           std::span<const std::uint8_t> message, crypto::HmacDrbg& rng);
  [[nodiscard]] bool verify(std::string_view id, std::span<const std::uint8_t> message,
                            const IbsSignature& sig) const;

 private:
  math::Fq master_;
  ec::G1 p_pub_;
};

}  // namespace mccls::cls
