// ZWXF — the Zhang–Wong–Xu–Feng certificateless signature (ACNS 2006),
// reconstructed to match the operation counts of the paper's Table 1:
// Sign 4s (pairing-free), Verify 4p+3s, public key 1 point.
//
//   Keys:    Q_A = H1(ID), D_A = s·Q_A, secret x, P_A = x·P
//   Sign:    r ← Zq*; U = r·P; W = Hw(M, ID, P_A, U) ∈ G1;
//            T = Ht(M, ID, P_A, U) ∈ G1; V = D_A + r·W + x·T.  σ = (U, V)
//   Verify:  ê(P, V) == ê(Ppub, Q_A) · ê(U, W) · ê(P_A, T)
//
// Correctness: ê(P, D_A + rW + xT)
//            = ê(P, sQ_A) · ê(P, W)^r · ê(P, T)^x
//            = ê(Ppub, Q_A) · ê(U, W) · ê(P_A, T).
#pragma once

#include <optional>

#include "cls/scheme.hpp"

namespace mccls::cls {

/// Typed ZWXF signature σ = (U, V).
struct ZwxfSignature {
  ec::G1 u;
  ec::G1 v;

  static constexpr std::size_t kSize = ec::G1::kEncodedSize * 2;
  [[nodiscard]] crypto::Bytes to_bytes() const;
  static std::optional<ZwxfSignature> from_bytes(std::span<const std::uint8_t> bytes);
};

class Zwxf final : public Scheme {
 public:
  [[nodiscard]] std::string_view name() const override { return "ZWXF"; }
  [[nodiscard]] OpCounts costs() const override {
    return OpCounts{.sign_pairings = 0,
                    .sign_scalar_mults = 4,
                    .verify_pairings = 4,
                    .verify_scalar_mults = 3,
                    .verify_exponentiations = 0,
                    .public_key_points = 1};
  }

  /// P_A = x·P.
  [[nodiscard]] PublicKey derive_public(const SystemParams& params,
                                        const math::Fq& secret) const override {
    return PublicKey{.points = {params.p.mul(secret)}};
  }

  [[nodiscard]] crypto::Bytes sign(const SystemParams& params, const UserKeys& signer,
                                   std::span<const std::uint8_t> message,
                                   crypto::HmacDrbg& rng) const override;
  [[nodiscard]] bool verify(const SystemParams& params, std::string_view id,
                            const PublicKey& public_key,
                            std::span<const std::uint8_t> message,
                            std::span<const std::uint8_t> signature,
                            GtCache* cache = nullptr) const override;
  [[nodiscard]] std::size_t signature_size() const override { return ZwxfSignature::kSize; }
};

}  // namespace mccls::cls
