#include "cls/paradigms.hpp"

#include "crypto/hash.hpp"
#include "pairing/pairing.hpp"

namespace mccls::cls {

namespace {

ec::G1 hash_message(std::string_view domain, std::span<const std::uint8_t> message) {
  return crypto::hash_to_g1(domain, message);
}

crypto::Bytes cert_transcript(std::string_view id, const ec::G1& key) {
  crypto::ByteWriter w;
  w.put_field(id);
  w.put_raw(key.to_bytes());
  return w.take();
}

}  // namespace

// ------------------------------------------------------------------- BLS

BlsKeyPair bls_keygen(crypto::HmacDrbg& rng) {
  const math::Fq x = rng.next_nonzero_fq();
  return BlsKeyPair{.secret = x, .public_key = ec::G1::mul_generator(x)};
}

ec::G1 bls_sign(const math::Fq& secret, std::span<const std::uint8_t> message) {
  return hash_message("bls/H", message).mul(secret);
}

bool bls_verify(const ec::G1& public_key, std::span<const std::uint8_t> message,
                const ec::G1& signature) {
  if (signature.is_infinity() || public_key.is_infinity()) return false;
  return pairing::pair(signature, ec::G1::generator()) ==
         pairing::pair(hash_message("bls/H", message), public_key);
}

// ------------------------------------------------------------- PKI layer

Certificate BlsPki::issue(std::string_view id, const ec::G1& subject_key) const {
  return Certificate{.id = std::string(id),
                     .subject_key = subject_key,
                     .ca_signature = bls_sign(ca_.secret, cert_transcript(id, subject_key))};
}

bool BlsPki::verify_certificate(const Certificate& cert) const {
  return bls_verify(ca_.public_key, cert_transcript(cert.id, cert.subject_key),
                    cert.ca_signature);
}

bool BlsPki::verify_signed_message(const Certificate& cert,
                                   std::span<const std::uint8_t> message,
                                   const ec::G1& signature) const {
  if (!verify_certificate(cert)) return false;
  return bls_verify(cert.subject_key, message, signature);
}

// ------------------------------------------------------------------- IBS

ChaCheonIbs::ChaCheonIbs(crypto::HmacDrbg& rng)
    : master_(rng.next_nonzero_fq()), p_pub_(ec::G1::mul_generator(master_)) {}

ec::G1 ChaCheonIbs::extract(std::string_view id) const {
  return hash_id(id).mul(master_);
}

IbsSignature ChaCheonIbs::sign(const ec::G1& d_id, std::string_view id,
                               std::span<const std::uint8_t> message,
                               crypto::HmacDrbg& rng) {
  const ec::G1 q_id = hash_id(id);
  for (;;) {
    const math::Fq r = rng.next_nonzero_fq();
    const ec::G1 u = q_id.mul(r);
    crypto::ByteWriter t;
    t.put_field(message);
    t.put_raw(u.to_bytes());
    const math::Fq h = crypto::hash_to_fq("ibs/H2", t.bytes());
    const math::Fq rh = r + h;
    if (rh.is_zero()) continue;  // degenerate V = O
    return IbsSignature{.u = u, .v = d_id.mul(rh)};
  }
}

bool ChaCheonIbs::verify(std::string_view id, std::span<const std::uint8_t> message,
                         const IbsSignature& sig) const {
  if (sig.v.is_infinity()) return false;
  const ec::G1 q_id = hash_id(id);
  crypto::ByteWriter t;
  t.put_field(message);
  t.put_raw(sig.u.to_bytes());
  const math::Fq h = crypto::hash_to_fq("ibs/H2", t.bytes());
  return pairing::pair(sig.v, ec::G1::generator()) ==
         pairing::pair(sig.u + q_id.mul(h), p_pub_);
}

}  // namespace mccls::cls
