#include "cls/epoch.hpp"

#include <charconv>
#include <stdexcept>

namespace mccls::cls {

namespace {
constexpr std::string_view kSeparator = kEpochSeparator;
}

std::string scoped_identity(std::string_view id, Epoch epoch) {
  if (id.find(kSeparator) != std::string_view::npos) {
    throw std::invalid_argument("scoped_identity: identity already scoped");
  }
  return std::string(id) + std::string(kSeparator) + std::to_string(epoch);
}

std::optional<std::pair<std::string, Epoch>> parse_scoped_identity(std::string_view scoped) {
  const auto pos = scoped.rfind(kSeparator);
  if (pos == std::string_view::npos || pos == 0) return std::nullopt;
  const std::string_view id = scoped.substr(0, pos);
  const std::string_view digits = scoped.substr(pos + kSeparator.size());
  if (digits.empty() || id.find(kSeparator) != std::string_view::npos) return std::nullopt;
  Epoch epoch = 0;
  const auto [ptr, ec] = std::from_chars(digits.data(), digits.data() + digits.size(), epoch);
  if (ec != std::errc{} || ptr != digits.data() + digits.size()) return std::nullopt;
  return std::pair{std::string(id), epoch};
}

bool epoch_acceptable(Epoch epoch, Epoch now, Epoch grace) {
  if (epoch > now) return false;  // signatures from the future are invalid
  return now - epoch <= grace;
}

}  // namespace mccls::cls
