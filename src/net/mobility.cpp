#include "net/mobility.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace mccls::net {

RandomWaypointMobility::RandomWaypointMobility(std::size_t num_nodes, const Config& config,
                                               sim::Rng& seed_rng)
    : config_(config) {
  if (config_.max_speed < 0 || config_.width <= 0 || config_.height <= 0 ||
      config_.placement_attempts < 1) {
    throw std::invalid_argument("RandomWaypointMobility: bad config");
  }
  // Draw initial positions; when requested, reject placements whose disc
  // graph is disconnected (up to the configured attempt budget). If every
  // attempt fails, keep the last draw but record the failure — callers must
  // be able to tell a routed field from a partitioned one.
  std::vector<Vec2> starts(num_nodes);
  sim::Rng placement_rng = seed_rng.fork(0xF1E1D);
  placement_connected_ = config_.connect_range <= 0;
  for (int attempt = 0; attempt < config_.placement_attempts && !placement_connected_;
       ++attempt) {
    for (auto& p : starts) p = random_point(placement_rng);
    placement_connected_ = is_connected(starts, config_.connect_range);
  }
  if (config_.connect_range <= 0) {
    for (auto& p : starts) p = random_point(placement_rng);
  }

  nodes_.reserve(num_nodes);
  for (std::size_t i = 0; i < num_nodes; ++i) {
    NodeState st(seed_rng.fork(i));
    st.leg = Leg{.from = starts[i], .to = starts[i], .depart = 0, .arrive = 0};
    nodes_.push_back(std::move(st));
  }
}

bool RandomWaypointMobility::is_connected(const std::vector<Vec2>& points, double range) {
  if (points.empty()) return true;
  std::vector<bool> visited(points.size(), false);
  std::vector<std::size_t> stack{0};
  visited[0] = true;
  std::size_t reached = 1;
  while (!stack.empty()) {
    const std::size_t cur = stack.back();
    stack.pop_back();
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (!visited[i] && distance(points[cur], points[i]) <= range) {
        visited[i] = true;
        ++reached;
        stack.push_back(i);
      }
    }
  }
  return reached == points.size();
}

Vec2 RandomWaypointMobility::random_point(sim::Rng& rng) const {
  return Vec2{rng.uniform(0, config_.width), rng.uniform(0, config_.height)};
}

void RandomWaypointMobility::advance(NodeState& st, sim::SimTime t) {
  // Generate successive legs until the current one covers time t. Only
  // touches `st` — per-node state is disjoint, so concurrent advancement of
  // DIFFERENT nodes is safe; the same node must be queried from one thread.
  while (t > st.leg.arrive + config_.pause) {
    const Vec2 from = st.leg.to;
    const sim::SimTime depart = st.leg.arrive + config_.pause;
    if (config_.max_speed <= 0) {
      // Degenerate static model: park forever.
      st.leg = Leg{from, from, depart, std::numeric_limits<sim::SimTime>::infinity()};
      return;
    }
    const Vec2 to = random_point(st.rng);
    const double lo = std::min(config_.min_speed, config_.max_speed);
    const double speed =
        lo < config_.max_speed ? st.rng.uniform(lo, config_.max_speed) : config_.max_speed;
    st.leg = Leg{from, to, depart, depart + distance(from, to) / speed};
  }
}

void RandomWaypointMobility::advance_all(sim::SimTime t) {
  for (NodeState& st : nodes_) advance(st, t);
}

Vec2 RandomWaypointMobility::position(NodeId node, sim::SimTime t) {
  NodeState& st = nodes_.at(node);
  advance(st, t);
  const Leg& leg = st.leg;
  if (t <= leg.depart) return leg.from;
  if (t >= leg.arrive) return leg.to;
  const double frac = (t - leg.depart) / (leg.arrive - leg.depart);
  return leg.from + (leg.to - leg.from) * frac;
}

}  // namespace mccls::net
