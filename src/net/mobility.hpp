// Node mobility models. The paper's scenario: 20 nodes in a rectangle under
// the random waypoint model, maximum speed 0–20 m/s, pause time 0 s.
#pragma once

#include <cstdint>
#include <vector>

#include "net/vec2.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace mccls::net {

using NodeId = std::uint32_t;

class MobilityModel {
 public:
  virtual ~MobilityModel() = default;
  /// Position of `node` at simulated time `t`. `t` must not decrease between
  /// calls for the same node (models may advance internal per-node state).
  /// Deliberately non-const: lazy models mutate per-node state, and hiding
  /// that behind `const` + `mutable` invited data races (two threads querying
  /// the same node through a "const" model). Per-node state is isolated, so
  /// concurrent calls for DISTINCT nodes are safe; concurrent calls for the
  /// same node are the caller's race to avoid.
  [[nodiscard]] virtual Vec2 position(NodeId node, sim::SimTime t) = 0;
};

/// Fixed positions; for unit tests and controlled topologies.
class StaticMobility final : public MobilityModel {
 public:
  explicit StaticMobility(std::vector<Vec2> positions) : positions_(std::move(positions)) {}
  [[nodiscard]] Vec2 position(NodeId node, sim::SimTime) override {
    return positions_.at(node);
  }
  void move(NodeId node, Vec2 to) { positions_.at(node) = to; }

 private:
  std::vector<Vec2> positions_;
};

/// Wraps a base model, pinning a trailing block of node ids at fixed spots
/// spaced along the field's centerline. Used to model attackers that choose
/// their ground instead of roaming (scenario runners for both protocols).
class PinnedTailMobility final : public MobilityModel {
 public:
  PinnedTailMobility(MobilityModel& base, std::size_t first_pinned,
                     std::size_t num_nodes, double width, double height)
      : base_(base),
        first_pinned_(first_pinned),
        num_nodes_(num_nodes),
        width_(width),
        height_(height) {}

  [[nodiscard]] Vec2 position(NodeId node, sim::SimTime t) override {
    if (node >= first_pinned_ && node < num_nodes_) {
      const std::size_t pinned = num_nodes_ - first_pinned_;
      const std::size_t idx = node - first_pinned_;
      return {width_ * static_cast<double>(idx + 1) / static_cast<double>(pinned + 1),
              height_ / 2};
    }
    return base_.position(node, t);
  }

 private:
  MobilityModel& base_;
  std::size_t first_pinned_;
  std::size_t num_nodes_;
  double width_;
  double height_;
};

/// Random waypoint: each node repeatedly picks a uniform destination in the
/// field and travels to it in a straight line at a speed drawn uniformly
/// from (min_speed, max_speed], then pauses. max_speed == 0 degenerates to a
/// static uniform placement.
class RandomWaypointMobility final : public MobilityModel {
 public:
  struct Config {
    double width = 1500.0;
    double height = 300.0;
    double max_speed = 10.0;  ///< m/s; the paper sweeps this from 0 to 20
    double min_speed = 0.1;   ///< avoids the RWP "stuck node" pathology
    double pause = 0.0;       ///< the paper uses pause time 0 s
    /// When > 0, initial placements are rejection-sampled until the disc
    /// graph with this radio range is connected (standard MANET-sim
    /// practice; otherwise static runs measure partitions, not routing).
    double connect_range = 0.0;
    /// Rejection-sampling budget for the connected placement. When every
    /// attempt fails the LAST draw is kept and placement_connected() reports
    /// false — callers (the scenario matrix) must surface that per cell
    /// instead of silently measuring a partitioned field.
    int placement_attempts = 200;
  };

  RandomWaypointMobility(std::size_t num_nodes, const Config& config, sim::Rng& seed_rng);

  [[nodiscard]] Vec2 position(NodeId node, sim::SimTime t) override;

  /// Advances every node's leg state to cover time `t` in one pass on the
  /// owning thread. After this, position(n, t') for t' <= t only reads leg
  /// state for nodes whose legs already reach past t' — the explicit
  /// alternative to lazy per-query advancement when a topology snapshot at
  /// a known time is wanted.
  void advance_all(sim::SimTime t);

  /// False when the constructor exhausted placement_attempts without finding
  /// a connected placement (connect_range > 0 only; trivially true
  /// otherwise). The kept placement is the last — disconnected — draw.
  [[nodiscard]] bool placement_connected() const { return placement_connected_; }

 private:
  struct Leg {
    Vec2 from;
    Vec2 to;
    sim::SimTime depart;  ///< time the node leaves `from` (after any pause)
    sim::SimTime arrive;  ///< time it reaches `to`
  };
  struct NodeState {
    sim::Rng rng;
    Leg leg;
    explicit NodeState(sim::Rng r) : rng(r) {}
  };

  void advance(NodeState& st, sim::SimTime t);
  Vec2 random_point(sim::Rng& rng) const;
  static bool is_connected(const std::vector<Vec2>& points, double range);

  Config config_;
  std::vector<NodeState> nodes_;
  bool placement_connected_ = true;
};

}  // namespace mccls::net
