// Link-layer frame. The payload is opaque to the radio (std::any), keeping
// the wireless substrate independent of the routing layer that rides on it.
#pragma once

#include <any>
#include <cstdint>

#include "net/mobility.hpp"

namespace mccls::net {

inline constexpr NodeId kBroadcastId = 0xFFFFFFFFu;

struct Frame {
  NodeId from = 0;
  NodeId to = kBroadcastId;  ///< kBroadcastId or a specific neighbour
  std::size_t bytes = 0;     ///< on-air size including headers
  std::any payload;
  std::uint64_t id = 0;  ///< assigned by the channel; unique per transmission
};

/// Upcall interface a node registers with the channel.
class RadioListener {
 public:
  virtual ~RadioListener() = default;
  /// Delivered exactly once per successfully received frame.
  virtual void on_frame(const Frame& frame) = 0;
};

}  // namespace mccls::net
