// Plane geometry for node positions (the paper's 1500 m x 300 m field).
#pragma once

#include <cmath>

namespace mccls::net {

struct Vec2 {
  double x = 0;
  double y = 0;

  friend Vec2 operator+(Vec2 a, Vec2 b) { return {a.x + b.x, a.y + b.y}; }
  friend Vec2 operator-(Vec2 a, Vec2 b) { return {a.x - b.x, a.y - b.y}; }
  friend Vec2 operator*(Vec2 a, double k) { return {a.x * k, a.y * k}; }
  friend bool operator==(const Vec2&, const Vec2&) = default;

  [[nodiscard]] double norm() const { return std::hypot(x, y); }
};

inline double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }

}  // namespace mccls::net
