// Shared wireless medium + per-node CSMA-style MAC:
//  - disc propagation model: receivers within `range` of the sender hear it
//  - per-node transmit queue with medium serialization and random backoff
//  - receiver-side collision model: overlapping receptions corrupt each other
//  - half-duplex: a transmitting node cannot receive
//  - unicast carries an ACK abstraction with link-layer retries; persistent
//    failure is reported to the sender (AODV's link-break trigger)
//
// This is the substitute for QualNet's 802.11 PHY/MAC (DESIGN.md §3): it
// keeps the first-order effects the paper's figures depend on — flood
// contention, jittered rebroadcast races (the rushing attack's lever), and
// mobility-induced link breaks — without modelling the full DCF.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/frame.hpp"
#include "net/mobility.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace mccls::net {

struct PhyConfig {
  double range = 250.0;          ///< radio range, metres
  double bitrate = 2e6;          ///< bps (802.11b basic rate era)
  double frame_overhead = 4e-4;  ///< fixed per-frame cost, seconds (PLCP+MAC)
  double prop_delay = 1e-6;      ///< propagation, seconds
  double max_backoff = 1.5e-3;   ///< CSMA random backoff upper bound, seconds
  double loss_prob = 0.0;        ///< additional per-link random loss
  double ack_timeout = 2e-3;     ///< unicast ACK wait, seconds
  int mac_retries = 5;           ///< link-layer transmission attempts for unicast
  std::size_t queue_limit = 50;  ///< interface queue depth (drop-tail)
  bool model_collisions = true;
};

class Channel {
 public:
  /// Result callback for unicast sends: true once the ACK (abstracted)
  /// arrives, false after all MAC retries fail.
  using SendResult = std::function<void(bool delivered)>;

  Channel(sim::Simulator& simulator, sim::Rng rng, MobilityModel& mobility,
          const PhyConfig& config);

  /// Registers a node; `listener` must outlive the channel.
  void attach(NodeId node, RadioListener* listener);

  /// Queues a broadcast (fire-and-forget).
  void broadcast(NodeId from, std::size_t bytes, std::any payload);

  /// Broadcast with a spoofed source: the frame is physically transmitted
  /// from `transmitter`'s position/queue but claims to come from
  /// `claimed_from` — the wormhole attacker's replay primitive. Receivers
  /// (and their signature checks) see `claimed_from`.
  void broadcast_as(NodeId transmitter, NodeId claimed_from, std::size_t bytes,
                    std::any payload);

  /// Promiscuous mode: `node`'s listener also receives frames addressed to
  /// other nodes (an eavesdropping attacker capability).
  void set_promiscuous(NodeId node, bool enabled);

  /// Queues a unicast with ACK/retry semantics. `on_result` may be empty.
  void unicast(NodeId from, NodeId to, std::size_t bytes, std::any payload,
               SendResult on_result = {});

  /// If true, frames transmitted by `node` bypass the random MAC backoff —
  /// the rushing attacker's capability (paper §2 / Hu-Perrig-Johnson).
  void set_zero_backoff(NodeId node, bool enabled);

  // Aggregate medium statistics (for tests and diagnostics).
  struct Stats {
    std::uint64_t frames_transmitted = 0;
    std::uint64_t frames_delivered = 0;
    std::uint64_t collisions = 0;
    std::uint64_t random_losses = 0;
    std::uint64_t unicast_failures = 0;
    std::uint64_t queue_drops = 0;
    std::uint64_t bytes_transmitted = 0;

    Stats& operator+=(const Stats& o) {
      frames_transmitted += o.frames_transmitted;
      frames_delivered += o.frames_delivered;
      collisions += o.collisions;
      random_losses += o.random_losses;
      unicast_failures += o.unicast_failures;
      queue_drops += o.queue_drops;
      bytes_transmitted += o.bytes_transmitted;
      return *this;
    }
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  [[nodiscard]] double airtime(std::size_t bytes) const {
    return config_.frame_overhead + static_cast<double>(bytes) * 8.0 / config_.bitrate;
  }

  /// Current distance between two nodes (helper for tests and agents).
  [[nodiscard]] double node_distance(NodeId a, NodeId b);

 private:
  struct PendingTx {
    Frame frame;
    SendResult on_result;
    int attempts_left;
  };
  struct Reception {
    sim::SimTime start;
    sim::SimTime end;
    bool corrupted = false;
  };
  struct NodeState {
    RadioListener* listener = nullptr;
    std::deque<PendingTx> queue;
    bool transmitting = false;
    sim::SimTime tx_until = 0;
    bool zero_backoff = false;
    bool promiscuous = false;
    std::vector<std::shared_ptr<Reception>> receptions;
  };

  void enqueue(NodeId from, PendingTx tx);
  void try_start_tx(NodeId node);
  void begin_tx(NodeId node);
  void finish_tx(NodeId node, PendingTx tx, sim::SimTime start, sim::SimTime end);
  void prune_receptions(NodeState& st, sim::SimTime now);

  sim::Simulator& sim_;
  sim::Rng rng_;
  MobilityModel& mobility_;
  PhyConfig config_;
  std::unordered_map<NodeId, NodeState> nodes_;
  Stats stats_;
  std::uint64_t next_frame_id_ = 1;
};

}  // namespace mccls::net
