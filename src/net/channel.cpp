#include "net/channel.hpp"

#include <algorithm>
#include <stdexcept>

namespace mccls::net {

Channel::Channel(sim::Simulator& simulator, sim::Rng rng, MobilityModel& mobility,
                 const PhyConfig& config)
    : sim_(simulator), rng_(rng), mobility_(mobility), config_(config) {}

void Channel::attach(NodeId node, RadioListener* listener) {
  if (listener == nullptr) throw std::invalid_argument("Channel::attach: null listener");
  nodes_[node].listener = listener;
}

double Channel::node_distance(NodeId a, NodeId b) {
  return distance(mobility_.position(a, sim_.now()), mobility_.position(b, sim_.now()));
}

void Channel::broadcast(NodeId from, std::size_t bytes, std::any payload) {
  broadcast_as(from, from, bytes, std::move(payload));
}

void Channel::broadcast_as(NodeId transmitter, NodeId claimed_from, std::size_t bytes,
                           std::any payload) {
  enqueue(transmitter, PendingTx{
                           .frame = Frame{.from = claimed_from,
                                          .to = kBroadcastId,
                                          .bytes = bytes,
                                          .payload = std::move(payload),
                                          .id = next_frame_id_++},
                           .on_result = {},
                           .attempts_left = 1,
                       });
}

void Channel::set_promiscuous(NodeId node, bool enabled) {
  nodes_.at(node).promiscuous = enabled;
}

void Channel::unicast(NodeId from, NodeId to, std::size_t bytes, std::any payload,
                      SendResult on_result) {
  enqueue(from, PendingTx{
                    .frame = Frame{.from = from,
                                   .to = to,
                                   .bytes = bytes,
                                   .payload = std::move(payload),
                                   .id = next_frame_id_++},
                    .on_result = std::move(on_result),
                    .attempts_left = config_.mac_retries,
                });
}

void Channel::set_zero_backoff(NodeId node, bool enabled) {
  nodes_.at(node).zero_backoff = enabled;
}

void Channel::enqueue(NodeId from, PendingTx tx) {
  NodeState& st = nodes_.at(from);
  if (st.queue.size() >= config_.queue_limit) {
    ++stats_.queue_drops;  // drop-tail interface queue, as in 2008-era stacks
    return;
  }
  st.queue.push_back(std::move(tx));
  try_start_tx(from);
}

void Channel::try_start_tx(NodeId node) {
  NodeState& st = nodes_.at(node);
  if (st.transmitting || st.queue.empty()) return;
  st.transmitting = true;
  const double backoff = st.zero_backoff ? 0.0 : rng_.uniform(0, config_.max_backoff);
  sim_.schedule_in(backoff, [this, node] { begin_tx(node); });
}

void Channel::begin_tx(NodeId node) {
  {
    NodeState& sender = nodes_.at(node);
    if (sender.queue.empty()) {  // defensive; queue never drains while transmitting
      sender.transmitting = false;
      return;
    }
    // Carrier sense: defer while the medium is busy at the sender (an
    // ongoing reception), then back off again. Rushing attackers skip the
    // extra backoff but still physically wait out the busy medium.
    const sim::SimTime now = sim_.now();
    sim::SimTime busy_until = 0;
    for (const auto& rx : sender.receptions) {
      if (rx->end > now) busy_until = std::max(busy_until, rx->end);
    }
    if (busy_until > now) {
      const double backoff =
          sender.zero_backoff ? 0.0 : rng_.uniform(0, config_.max_backoff);
      sim_.schedule_at(busy_until + backoff + 1e-9, [this, node] { begin_tx(node); });
      return;
    }
  }
  NodeState& sender = nodes_.at(node);
  {
    PendingTx tx = std::move(sender.queue.front());
    sender.queue.pop_front();
    const sim::SimTime start = sim_.now();
    const sim::SimTime end = start + airtime(tx.frame.bytes);
    sender.tx_until = end;
    // Half-duplex: transmitting corrupts anything this node was receiving.
    for (const auto& rx : sender.receptions) {
      if (rx->end > start) rx->corrupted = true;
    }
    finish_tx(node, std::move(tx), start, end);
  }
}

void Channel::prune_receptions(NodeState& st, sim::SimTime now) {
  std::erase_if(st.receptions, [now](const auto& rx) { return rx->end <= now; });
}

void Channel::finish_tx(NodeId node, PendingTx tx, sim::SimTime start, sim::SimTime end) {
  ++stats_.frames_transmitted;
  stats_.bytes_transmitted += tx.frame.bytes;

  const Vec2 sender_pos = mobility_.position(node, start);
  std::shared_ptr<Reception> target_rx;  // set when the unicast target is in range

  for (auto& [other_id, other] : nodes_) {
    if (other_id == node) continue;
    if (distance(sender_pos, mobility_.position(other_id, start)) > config_.range) continue;

    auto reception = std::make_shared<Reception>(
        Reception{.start = start + config_.prop_delay, .end = end + config_.prop_delay});
    // Receiver busy transmitting during our interval -> corrupted.
    if (other.transmitting && other.tx_until > reception->start) reception->corrupted = true;
    if (config_.model_collisions) {
      prune_receptions(other, sim_.now());
      for (const auto& existing : other.receptions) {
        if (existing->end > reception->start && existing->start < reception->end) {
          existing->corrupted = true;
          reception->corrupted = true;
        }
      }
    }
    if (config_.loss_prob > 0 && rng_.chance(config_.loss_prob)) {
      reception->corrupted = true;
      ++stats_.random_losses;
    }
    other.receptions.push_back(reception);
    if (tx.frame.to == other_id) target_rx = reception;

    const bool deliver_to_listener =
        tx.frame.to == kBroadcastId || tx.frame.to == other_id || other.promiscuous;
    const NodeId receiver_id = other_id;
    sim_.schedule_at(reception->end, [this, receiver_id, frame = tx.frame, reception,
                                      deliver_to_listener]() mutable {
      NodeState& receiver = nodes_.at(receiver_id);
      // A transmission the receiver started after our delivery was scheduled
      // also corrupts it (checked again here).
      if (receiver.transmitting && receiver.tx_until > reception->start) {
        reception->corrupted = true;
      }
      if (reception->corrupted) {
        ++stats_.collisions;
        return;
      }
      ++stats_.frames_delivered;
      if (deliver_to_listener && receiver.listener != nullptr) {
        receiver.listener->on_frame(frame);
      }
    });
  }

  // Transmission complete: free the medium and start the next queued frame.
  sim_.schedule_at(end, [this, node] {
    NodeState& st = nodes_.at(node);
    st.transmitting = false;
    try_start_tx(node);
  });

  // Unicast completion: decide ACK vs retry at end + ack_timeout.
  if (tx.frame.to != kBroadcastId) {
    sim_.schedule_at(end + config_.ack_timeout,
                     [this, node, tx = std::move(tx), target_rx]() mutable {
                       const bool ok = target_rx != nullptr && !target_rx->corrupted;
                       if (ok) {
                         if (tx.on_result) tx.on_result(true);
                         return;
                       }
                       if (--tx.attempts_left > 0) {
                         // 802.11-style exponential backoff: the contention
                         // window doubles with each retry.
                         const int attempt = config_.mac_retries - tx.attempts_left;
                         const double window =
                             config_.max_backoff * static_cast<double>(1 << attempt);
                         const double wait = rng_.uniform(0, window);
                         sim_.schedule_in(wait, [this, node, tx = std::move(tx)]() mutable {
                           NodeState& st = nodes_.at(node);
                           st.queue.push_front(std::move(tx));
                           try_start_tx(node);
                         });
                         return;
                       }
                       ++stats_.unicast_failures;
                       if (tx.on_result) tx.on_result(false);
                     });
  }
}

}  // namespace mccls::net
