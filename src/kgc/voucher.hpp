// Offline-verifiable identity bindings: KGC-signed vouchers and chains.
//
// A Voucher is the KGC's signed statement "identity@epoch-N holds this
// public key, valid in [not_before, not_after)". Any holder of the issuing
// KGC's vouching key can check the binding with two pairings and no network
// round trip, which converts verify-by-identity's liveness dependency on
// the directory (PR 4/5) into a cache-freshness problem: a verifyd that has
// seen a voucher keeps vouching for the signer through a total directory
// outage, until the voucher expires or the epoch moves on.
//
// Trust chains are depth-bounded at two links for federation:
//
//   TrustAnchors (root vouching keys, configured out of band)
//        │ signs
//        ▼
//   intermediate voucher: subject = domain KGC's anchor name,
//                         pk      = domain KGC's vouching key (33-byte G1)
//        │ signs
//        ▼
//   leaf voucher:         subject = "ID@epoch-N",
//                         pk      = the signer's cls::PublicKey bytes
//
// A single-link chain is the common case (the leaf's issuer is itself an
// anchor). Revocation carries over from PR 4 unchanged: an epoch bump makes
// every voucher issued for the old epoch answer kNotVouched (scoped
// subjects are gated by cls::epoch_acceptable exactly like the directory),
// and expiry bounds how long a stale binding can live in any cache.
//
// The voucher signature is BLS-shaped over the existing pairing:
//   sig = s · H(domain, preimage)           (issuance, master key s)
//   ê(sig, P) == ê(H(preimage), s·P)        (verification)
// checked as the single product ê(sig, P) · ê(H, −pk) == 1 so one shared
// Miller loop covers both factors. Each link is checked with its own
// product — folding two links into one product would let an adversary move
// a correction term between the two signatures (the statements would still
// be the honest ones, but per-link soundness is the cheaper thing to reason
// about at depth ≤ 2).
//
// Codecs follow the svc/kgc wire conventions: versioned, per-field caps,
// total (malformed / truncated / non-canonical / trailing bytes → nullopt),
// decode∘encode the identity on every accepted input (mcqc's stability
// property; the kgc_voucher fuzz target hammers exactly this).
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "cls/epoch.hpp"
#include "cls/keys.hpp"
#include "crypto/encoding.hpp"
#include "ec/g1.hpp"
#include "math/fe.hpp"
#include "svc/metrics.hpp"
#include "svc/resolver.hpp"

namespace mccls::kgc {

inline constexpr std::uint8_t kVoucherVersion = 1;
/// Domain-separation tag for the voucher oracle (crypto::hash_to_g1); keeps
/// voucher signatures disjoint from every scheme's H1/H2 transcript.
inline constexpr std::string_view kVoucherDomain = "mccls/voucher/v1";
inline constexpr std::size_t kMaxVoucherIdLen = 1024;
inline constexpr std::size_t kMaxVoucherPkLen = 256;
/// Chain depth cap: root → domain KGC → binding and nothing longer.
inline constexpr std::size_t kMaxVoucherChainDepth = 2;
/// Cap on one encoded voucher inside a chain frame (a legitimate voucher is
/// well under 2.5 KiB even at both id caps).
inline constexpr std::size_t kMaxVoucherLen = 4096;

/// One signed binding. For a leaf, `subject` is the scoped identity
/// "ID@epoch-N" (and `epoch` must equal N — the chain verifier enforces the
/// redundancy), `pk_bytes` the canonical cls::PublicKey serialization. For
/// an intermediate, `subject` is the vouched-for KGC's anchor name,
/// `pk_bytes` its 33-byte compressed vouching key, and `epoch` is 0.
struct Voucher {
  std::string issuer;       ///< anchor name of the signing KGC
  std::string subject;
  crypto::Bytes pk_bytes;
  cls::Epoch epoch = 0;
  std::uint64_t not_before = 0;  ///< inclusive, seconds
  std::uint64_t not_after = 0;   ///< exclusive: exactly-at-expiry is expired
  std::uint64_t serial = 0;      ///< issuer-local, persisted in the kgcd WAL
  ec::G1 signature;              ///< s · H(kVoucherDomain, preimage)

  friend bool operator==(const Voucher&, const Voucher&) = default;
};

/// Leaf first, root-adjacent last.
using VoucherChain = std::vector<Voucher>;

/// The signed transcript: every field except the signature, canonically
/// framed. Issuance and verification must agree on this byte string.
crypto::Bytes voucher_preimage(const Voucher& voucher);

crypto::Bytes encode_voucher(const Voucher& voucher);
std::optional<Voucher> decode_voucher(std::span<const std::uint8_t> bytes);

crypto::Bytes encode_voucher_chain(const VoucherChain& chain);
std::optional<VoucherChain> decode_voucher_chain(std::span<const std::uint8_t> bytes);

/// ê(sig, P) == ê(H(preimage), issuer_pk), as one two-factor product.
/// Total: infinity / out-of-subgroup signatures or vouching keys are false.
bool verify_voucher_signature(const Voucher& voucher, const ec::G1& issuer_pk);

/// Signs vouchers with a KGC master key. The vouching key (s·P) is what
/// TrustAnchors distributes; it is byte-identical to the KGC's P_pub.
class VoucherIssuer {
 public:
  VoucherIssuer(const math::Fq& master_key, std::string name);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const ec::G1& public_key() const { return pk_; }

  [[nodiscard]] Voucher issue(std::string_view subject,
                              std::span<const std::uint8_t> pk_bytes, cls::Epoch epoch,
                              std::uint64_t not_before, std::uint64_t not_after,
                              std::uint64_t serial) const;

  /// Cross-domain federation: this issuer (a root) vouches for another KGC's
  /// vouching key, producing the intermediate link of a depth-2 chain.
  [[nodiscard]] Voucher vouch_for_issuer(const VoucherIssuer& domain,
                                         std::uint64_t not_before,
                                         std::uint64_t not_after,
                                         std::uint64_t serial) const;

 private:
  math::Fq s_;
  ec::G1 pk_;
  std::string name_;
};

/// Root-of-trust set: anchor name → vouching key. Built at configuration
/// time, read-only afterwards (concurrent reads need no lock).
class TrustAnchors {
 public:
  /// False (and no mutation) for a structurally bad key (infinity or
  /// out-of-subgroup) or a duplicate name.
  bool add(std::string name, const ec::G1& vouching_key);

  [[nodiscard]] const ec::G1* find(std::string_view name) const;
  [[nodiscard]] std::size_t size() const { return anchors_.size(); }

 private:
  std::unordered_map<std::string, ec::G1> anchors_;
};

/// Why a chain was accepted or refused. Everything except kOk maps to the
/// resolver's kNotVouched-shaped "do not trust this" — the distinctions
/// exist for tests, metrics and operators.
enum class ChainVerdict : std::uint8_t {
  kOk = 0,
  kBadChain = 1,         ///< structural: empty/too deep, link mismatch,
                         ///< undecodable key, unscoped leaf, epoch mismatch
  kUntrustedIssuer = 2,  ///< no anchor vouches for the chain's root link
  kNotYetValid = 3,      ///< some link's not_before is in the future
  kExpired = 4,          ///< some link's not_after has passed (or now == it)
  kEpochRejected = 5,    ///< leaf epoch outside the acceptable window
  kBadSignature = 6,     ///< a link's pairing check failed
};

const char* chain_verdict_name(ChainVerdict verdict);

struct ChainCheck {
  ChainVerdict verdict = ChainVerdict::kBadChain;
  cls::PublicKey key;            ///< decoded leaf key; meaningful iff kOk
  std::string subject;           ///< leaf subject ("ID@epoch-N")
  cls::Epoch epoch = 0;          ///< leaf epoch (the N above)
  std::uint64_t not_before = 0;  ///< effective window: max nb over links
  std::uint64_t not_after = 0;   ///< effective window: min na over links
};

/// Full offline chain verification at wall-clock `now`: structure, time
/// windows on every link, signatures bottoming out in `anchors`, and — when
/// `current_epoch` is supplied — the leaf-epoch acceptance window (same
/// policy as KeyDirectory::resolve, so offline and online verdicts agree).
/// A one-link chain requires the leaf's issuer to be an anchor; a two-link
/// chain requires chain[1].subject == chain[0].issuer and chain[1].issuer
/// to be an anchor.
ChainCheck verify_voucher_chain(const VoucherChain& chain, const TrustAnchors& anchors,
                                std::uint64_t now,
                                std::optional<cls::Epoch> current_epoch = std::nullopt,
                                cls::Epoch grace = 1);

/// Configuration for VoucherVerifyingResolver. All hooks are injectable so
/// tests and the differential property control time and epoch exactly.
struct VoucherResolverConfig {
  cls::Epoch grace = 1;
  /// Positive-cache bound (each subject costs two map entries: the scoped
  /// subject and its base identity). Oldest-ingested entries evict first.
  std::size_t capacity = 4096;
  /// Wall clock in seconds. Defaults to the system clock.
  std::function<std::uint64_t()> now;
  /// The verifier's view of the current issuance epoch. When absent, scoped
  /// subjects are accepted on voucher validity alone (no epoch policy) —
  /// mirroring a KeyDirectory with an unknown epoch is not possible, so
  /// deployments that roll epochs must supply this.
  std::function<cls::Epoch()> current_epoch;
  /// Optional network fetch of a chain for an identity (e.g. a kgcd kVouch
  /// round trip). Called on cache miss before falling through to the inner
  /// resolver; a fetched chain is verified and cached exactly like ingest().
  std::function<std::optional<VoucherChain>(std::string_view)> fetch;
};

/// svc::PkResolver that answers from verified, unexpired vouchers before
/// consulting the resolver underneath:
///
///   VerifyService → VoucherVerifyingResolver → ResilientResolver → ... →
///   KeyDirectory
///
/// Verdict semantics mirror KeyDirectory::resolve so the composition is
/// transparent when the directory is reachable and merely *more available*
/// when it is not:
///   * a scoped identity whose epoch fails the acceptance window answers
///     kNotVouched locally (definitive — revocation keeps working offline);
///   * a cached, verified, time-valid voucher answers kOk with no inner
///     call (steady state: one hash lookup + key copy);
///   * anything else falls through — an expired or missing voucher is a
///     cache miss, never an error, and an unverifiable chain is *dropped*
///     (fail closed) rather than trusted.
///
/// Thread-safe; resolve() is called from worker threads concurrently.
class VoucherVerifyingResolver final : public svc::PkResolver {
 public:
  /// `inner` may be nullptr (pure offline: misses answer kUnavailable, the
  /// honest transient outcome for "I have no path to the directory").
  /// `anchors` must outlive the resolver.
  VoucherVerifyingResolver(svc::PkResolver* inner, const TrustAnchors* anchors,
                           VoucherResolverConfig config = {});

  svc::ResolveResult resolve(std::string_view id) override;

  /// Verifies and (on kOk) caches a chain, keyed under both the scoped leaf
  /// subject and its base identity. This is the prefetch entry point the
  /// loadgen/bench warm phase and the netd acceptance test use.
  ChainVerdict ingest(const VoucherChain& chain);

  [[nodiscard]] std::size_t cached() const;
  void clear();

  /// Voucher hit/expired/bad-sig counters; not owned, may be nullptr.
  void set_metrics(svc::ServiceMetrics* metrics) { metrics_ = metrics; }

 private:
  struct Entry {
    cls::PublicKey key;
    cls::Epoch epoch = 0;
    std::uint64_t not_before = 0;
    std::uint64_t not_after = 0;
  };

  [[nodiscard]] std::uint64_t now() const;
  svc::ResolveResult miss(std::string_view id);
  void insert_locked(const std::string& key_str, const Entry& entry);

  svc::PkResolver* inner_;
  const TrustAnchors* anchors_;
  VoucherResolverConfig config_;
  svc::ServiceMetrics* metrics_ = nullptr;

  mutable std::mutex mutex_;
  std::unordered_map<std::string, Entry> cache_;
  std::list<std::string> eviction_;  ///< insertion order; front evicts first
};

}  // namespace mccls::kgc
