#include "kgc/voucher.hpp"

#include <chrono>
#include <utility>

#include "crypto/hash.hpp"
#include "pairing/pairing.hpp"

namespace mccls::kgc {

namespace {

/// Shared by the preimage and the full encoding: every field but the
/// signature, in declaration order.
void put_voucher_body(crypto::ByteWriter& w, const Voucher& v) {
  w.put_u8(kVoucherVersion);
  w.put_field(v.issuer);
  w.put_field(v.subject);
  w.put_field(v.pk_bytes);
  w.put_u64(v.epoch);
  w.put_u64(v.not_before);
  w.put_u64(v.not_after);
  w.put_u64(v.serial);
}

/// ê(sig, P) · ê(H(m), −pk) == 1, one shared Miller loop for both factors.
bool pairing_check(const ec::G1& sig, const ec::G1& hashed, const ec::G1& issuer_pk) {
  const std::pair<ec::G1, ec::G1> factors[2] = {
      {sig, ec::G1::generator()},
      {hashed, issuer_pk.neg()},
  };
  return pairing::multi_pair(factors).is_one();
}

bool valid_vouching_key(const ec::G1& pk) { return !pk.is_infinity() && pk.in_subgroup(); }

std::uint64_t wall_clock_seconds() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::seconds>(
                                        std::chrono::system_clock::now().time_since_epoch())
                                        .count());
}

}  // namespace

crypto::Bytes voucher_preimage(const Voucher& voucher) {
  crypto::ByteWriter w;
  put_voucher_body(w, voucher);
  return w.take();
}

crypto::Bytes encode_voucher(const Voucher& voucher) {
  crypto::ByteWriter w;
  put_voucher_body(w, voucher);
  const auto sig = voucher.signature.to_bytes();
  w.put_field(std::span<const std::uint8_t>(sig));
  return w.take();
}

std::optional<Voucher> decode_voucher(std::span<const std::uint8_t> bytes) {
  crypto::ByteReader r(bytes);
  const auto version = r.get_u8();
  if (!version || *version != kVoucherVersion) return std::nullopt;
  Voucher v;
  const auto issuer = r.get_field(kMaxVoucherIdLen);
  if (!issuer || issuer->empty()) return std::nullopt;
  v.issuer.assign(issuer->begin(), issuer->end());
  const auto subject = r.get_field(kMaxVoucherIdLen);
  if (!subject || subject->empty()) return std::nullopt;
  v.subject.assign(subject->begin(), subject->end());
  const auto pk = r.get_field(kMaxVoucherPkLen);
  if (!pk || pk->empty()) return std::nullopt;
  v.pk_bytes = *pk;
  const auto epoch = r.get_u64();
  const auto not_before = r.get_u64();
  const auto not_after = r.get_u64();
  const auto serial = r.get_u64();
  if (!epoch || !not_before || !not_after || !serial) return std::nullopt;
  v.epoch = *epoch;
  v.not_before = *not_before;
  v.not_after = *not_after;
  v.serial = *serial;
  const auto sig = r.get_field(ec::G1::kEncodedSize);
  if (!sig || sig->size() != ec::G1::kEncodedSize) return std::nullopt;
  const auto point = ec::G1::from_bytes(*sig);
  if (!point) return std::nullopt;
  v.signature = *point;
  if (!r.exhausted()) return std::nullopt;
  return v;
}

crypto::Bytes encode_voucher_chain(const VoucherChain& chain) {
  crypto::ByteWriter w;
  w.put_u8(kVoucherVersion);
  w.put_u8(static_cast<std::uint8_t>(chain.size()));
  for (const Voucher& v : chain) {
    w.put_field(encode_voucher(v));
  }
  return w.take();
}

std::optional<VoucherChain> decode_voucher_chain(std::span<const std::uint8_t> bytes) {
  crypto::ByteReader r(bytes);
  const auto version = r.get_u8();
  if (!version || *version != kVoucherVersion) return std::nullopt;
  const auto count = r.get_u8();
  if (!count || *count == 0 || *count > kMaxVoucherChainDepth) return std::nullopt;
  VoucherChain chain;
  chain.reserve(*count);
  for (std::uint8_t i = 0; i < *count; ++i) {
    const auto field = r.get_field(kMaxVoucherLen);
    if (!field) return std::nullopt;
    auto voucher = decode_voucher(*field);
    if (!voucher) return std::nullopt;
    chain.push_back(std::move(*voucher));
  }
  if (!r.exhausted()) return std::nullopt;
  return chain;
}

bool verify_voucher_signature(const Voucher& voucher, const ec::G1& issuer_pk) {
  if (!valid_vouching_key(issuer_pk)) return false;
  if (voucher.signature.is_infinity() || !voucher.signature.in_subgroup()) return false;
  const ec::G1 hashed = crypto::hash_to_g1(kVoucherDomain, voucher_preimage(voucher));
  return pairing_check(voucher.signature, hashed, issuer_pk);
}

// ---- VoucherIssuer ---------------------------------------------------------

VoucherIssuer::VoucherIssuer(const math::Fq& master_key, std::string name)
    : s_(master_key), pk_(ec::G1::mul_generator(master_key)), name_(std::move(name)) {}

Voucher VoucherIssuer::issue(std::string_view subject,
                             std::span<const std::uint8_t> pk_bytes, cls::Epoch epoch,
                             std::uint64_t not_before, std::uint64_t not_after,
                             std::uint64_t serial) const {
  Voucher v;
  v.issuer = name_;
  v.subject = std::string(subject);
  v.pk_bytes.assign(pk_bytes.begin(), pk_bytes.end());
  v.epoch = epoch;
  v.not_before = not_before;
  v.not_after = not_after;
  v.serial = serial;
  v.signature = crypto::hash_to_g1(kVoucherDomain, voucher_preimage(v)).mul(s_);
  return v;
}

Voucher VoucherIssuer::vouch_for_issuer(const VoucherIssuer& domain,
                                        std::uint64_t not_before, std::uint64_t not_after,
                                        std::uint64_t serial) const {
  const auto pk = domain.public_key().to_bytes();
  return issue(domain.name(), pk, /*epoch=*/0, not_before, not_after, serial);
}

// ---- TrustAnchors ----------------------------------------------------------

bool TrustAnchors::add(std::string name, const ec::G1& vouching_key) {
  if (name.empty() || !valid_vouching_key(vouching_key)) return false;
  return anchors_.try_emplace(std::move(name), vouching_key).second;
}

const ec::G1* TrustAnchors::find(std::string_view name) const {
  const auto it = anchors_.find(std::string(name));
  return it == anchors_.end() ? nullptr : &it->second;
}

// ---- chain verification ----------------------------------------------------

const char* chain_verdict_name(ChainVerdict verdict) {
  switch (verdict) {
    case ChainVerdict::kOk: return "ok";
    case ChainVerdict::kBadChain: return "bad-chain";
    case ChainVerdict::kUntrustedIssuer: return "untrusted-issuer";
    case ChainVerdict::kNotYetValid: return "not-yet-valid";
    case ChainVerdict::kExpired: return "expired";
    case ChainVerdict::kEpochRejected: return "epoch-rejected";
    case ChainVerdict::kBadSignature: return "bad-signature";
  }
  return "unknown";
}

namespace {

/// `now` inside [not_before, not_after)? kOk / kNotYetValid / kExpired.
/// Half-open on purpose: a voucher is dead the second it expires, and the
/// degenerate not_before == not_after window is never valid.
ChainVerdict time_verdict(const Voucher& v, std::uint64_t now) {
  if (now < v.not_before) return ChainVerdict::kNotYetValid;
  if (now >= v.not_after) return ChainVerdict::kExpired;
  return ChainVerdict::kOk;
}

}  // namespace

ChainCheck verify_voucher_chain(const VoucherChain& chain, const TrustAnchors& anchors,
                                std::uint64_t now,
                                std::optional<cls::Epoch> current_epoch,
                                cls::Epoch grace) {
  ChainCheck check;
  if (chain.empty() || chain.size() > kMaxVoucherChainDepth) return check;
  const Voucher& leaf = chain.front();

  // Leaf structure first: the subject must be a scoped identity whose epoch
  // matches the voucher's epoch field (the redundancy keeps the two places
  // downstream code reads the epoch from ever disagreeing).
  const auto scoped = cls::parse_scoped_identity(leaf.subject);
  if (!scoped || scoped->second != leaf.epoch) return check;

  // Time windows for every link, before any pairing is paid.
  for (const Voucher& link : chain) {
    const ChainVerdict tv = time_verdict(link, now);
    if (tv != ChainVerdict::kOk) {
      check.verdict = tv;
      return check;
    }
  }

  // Resolve the key that must have signed the leaf.
  const ec::G1* leaf_issuer_pk = nullptr;
  ec::G1 domain_pk;
  if (chain.size() == 1) {
    leaf_issuer_pk = anchors.find(leaf.issuer);
    if (!leaf_issuer_pk) {
      check.verdict = ChainVerdict::kUntrustedIssuer;
      return check;
    }
  } else {
    const Voucher& mid = chain[1];
    if (mid.subject != leaf.issuer) return check;
    const ec::G1* root_pk = anchors.find(mid.issuer);
    if (!root_pk) {
      check.verdict = ChainVerdict::kUntrustedIssuer;
      return check;
    }
    const auto decoded = ec::G1::from_bytes(mid.pk_bytes);
    if (!decoded || !decoded->in_subgroup() || decoded->is_infinity()) return check;
    if (!verify_voucher_signature(mid, *root_pk)) {
      check.verdict = ChainVerdict::kBadSignature;
      return check;
    }
    domain_pk = *decoded;
    leaf_issuer_pk = &domain_pk;
  }

  if (!verify_voucher_signature(leaf, *leaf_issuer_pk)) {
    check.verdict = ChainVerdict::kBadSignature;
    return check;
  }

  // Epoch policy, same window as KeyDirectory::resolve.
  if (current_epoch && !cls::epoch_acceptable(leaf.epoch, *current_epoch, grace)) {
    check.verdict = ChainVerdict::kEpochRejected;
    return check;
  }

  auto key = cls::PublicKey::from_bytes(leaf.pk_bytes);
  if (!key || !key->well_formed()) return check;

  check.verdict = ChainVerdict::kOk;
  check.key = std::move(*key);
  check.subject = leaf.subject;
  check.epoch = leaf.epoch;
  check.not_before = leaf.not_before;
  check.not_after = leaf.not_after;
  for (const Voucher& link : chain) {
    if (link.not_before > check.not_before) check.not_before = link.not_before;
    if (link.not_after < check.not_after) check.not_after = link.not_after;
  }
  return check;
}

// ---- VoucherVerifyingResolver ----------------------------------------------

VoucherVerifyingResolver::VoucherVerifyingResolver(svc::PkResolver* inner,
                                                   const TrustAnchors* anchors,
                                                   VoucherResolverConfig config)
    : inner_(inner), anchors_(anchors), config_(std::move(config)) {}

std::uint64_t VoucherVerifyingResolver::now() const {
  return config_.now ? config_.now() : wall_clock_seconds();
}

svc::ResolveResult VoucherVerifyingResolver::resolve(std::string_view id) {
  // Local epoch policy first: a scoped identity outside the acceptance
  // window is definitively not vouched, directory reachable or not. This is
  // what keeps revocation (epoch bump) effective through a total outage.
  const auto scoped = cls::parse_scoped_identity(id);
  if (scoped && config_.current_epoch &&
      !cls::epoch_acceptable(scoped->second, config_.current_epoch(), config_.grace)) {
    return svc::ResolveResult::not_vouched();
  }

  {
    std::lock_guard lock(mutex_);
    const auto it = cache_.find(std::string(id));
    if (it != cache_.end()) {
      const std::uint64_t t = now();
      if (t >= it->second.not_before && t < it->second.not_after) {
        if (metrics_) metrics_->on_voucher_hit();
        return svc::ResolveResult::ok(it->second.key);
      }
      if (t >= it->second.not_after) {
        if (metrics_) metrics_->on_voucher_expired();
        // Leave eviction-list bookkeeping to capacity pressure; the map
        // entry itself is dead weight we can drop now.
        cache_.erase(it);
      }
      // A not-yet-valid voucher stays cached (clock skew at ingest); the
      // lookup is simply a miss until the window opens.
    }
  }
  return miss(id);
}

svc::ResolveResult VoucherVerifyingResolver::miss(std::string_view id) {
  if (config_.fetch) {
    if (auto chain = config_.fetch(id)) {
      const ChainVerdict verdict = ingest(*chain);
      if (verdict == ChainVerdict::kOk) {
        std::lock_guard lock(mutex_);
        const auto it = cache_.find(std::string(id));
        if (it != cache_.end()) {
          const std::uint64_t t = now();
          if (t >= it->second.not_before && t < it->second.not_after) {
            if (metrics_) metrics_->on_voucher_hit();
            return svc::ResolveResult::ok(it->second.key);
          }
        }
      }
      // Unverifiable chains are dropped, never trusted (ingest already
      // counted the bad signature); fall through to the inner resolver.
    }
  }
  if (!inner_) return svc::ResolveResult::unavailable();
  return inner_->resolve(id);
}

ChainVerdict VoucherVerifyingResolver::ingest(const VoucherChain& chain) {
  std::optional<cls::Epoch> epoch;
  if (config_.current_epoch) epoch = config_.current_epoch();
  ChainCheck check =
      verify_voucher_chain(chain, *anchors_, now(), epoch, config_.grace);
  if (check.verdict != ChainVerdict::kOk) {
    if (metrics_ && (check.verdict == ChainVerdict::kBadSignature ||
                     check.verdict == ChainVerdict::kBadChain ||
                     check.verdict == ChainVerdict::kUntrustedIssuer)) {
      metrics_->on_voucher_bad_sig();
    }
    return check.verdict;
  }
  Entry entry{std::move(check.key), check.epoch, check.not_before, check.not_after};
  const auto scoped = cls::parse_scoped_identity(check.subject);
  std::lock_guard lock(mutex_);
  insert_locked(check.subject, entry);
  if (scoped) insert_locked(scoped->first, entry);
  return ChainVerdict::kOk;
}

void VoucherVerifyingResolver::insert_locked(const std::string& key_str,
                                             const Entry& entry) {
  const auto [it, inserted] = cache_.insert_or_assign(key_str, entry);
  (void)it;
  if (inserted) {
    eviction_.push_back(key_str);
    while (cache_.size() > config_.capacity && !eviction_.empty()) {
      cache_.erase(eviction_.front());
      eviction_.pop_front();
    }
  }
}

std::size_t VoucherVerifyingResolver::cached() const {
  std::lock_guard lock(mutex_);
  return cache_.size();
}

void VoucherVerifyingResolver::clear() {
  std::lock_guard lock(mutex_);
  cache_.clear();
  eviction_.clear();
}

}  // namespace mccls::kgc
