#include "kgc/kgcd.hpp"

#include <chrono>
#include <mutex>

#include "kgc/replica.hpp"

namespace mccls::kgc {

namespace {

KgcStatus to_status(DirStatus status) {
  switch (status) {
    case DirStatus::kOk:
      return KgcStatus::kOk;
    case DirStatus::kUnknownId:
      return KgcStatus::kUnknownId;
    case DirStatus::kRevoked:
      return KgcStatus::kRevoked;
    case DirStatus::kInvalidKey:
      return KgcStatus::kInvalidKey;
    case DirStatus::kConflict:
      return KgcStatus::kConflict;
  }
  return KgcStatus::kStoreError;
}

}  // namespace

Kgcd::Kgcd(const math::Fq& master_key, KgcdConfig config)
    : config_(std::move(config)),
      kgc_(cls::Kgc::from_master_key(master_key)),
      voucher_issuer_(master_key, config_.issuer),
      directory_(DirectoryConfig{.shards = config_.shards,
                                 .lru_per_shard = config_.lru_per_shard,
                                 .epoch = config_.epoch,
                                 .grace = config_.grace}),
      store_(LogStoreConfig{.dir = config_.data_dir,
                            .shards = config_.shards,
                            .fsync = config_.fsync,
                            .segment_bytes = config_.segment_bytes}),
      commit_locks_(std::make_unique<std::shared_mutex[]>(store_.shards())),
      compacted_seq_(store_.shards(), 0) {
  directory_.set_metrics(&metrics_);
  store_.set_metrics(&metrics_);
  recovery_ = store_.recover(
      [this](std::size_t, const SnapshotEntry& entry) { directory_.apply(entry); },
      [this](std::size_t, const WalRecord& record) {
        // Voucher records restore the serial high-water mark; everything
        // else is directory state (apply ignores kVoucher defensively too).
        if (record.type == WalRecordType::kVoucher) {
          std::uint64_t seen = voucher_serial_.load(std::memory_order_relaxed);
          if (record.serial > seen) {
            voucher_serial_.store(record.serial, std::memory_order_relaxed);
          }
          return;
        }
        directory_.apply(record);
      });
  // Shard snapshots fold voucher records away (they carry no directory
  // state), so after compaction the replayed high-water mark can be behind
  // the last issued serial. total_sequence() grows by one per append across
  // all shards, so it is ≥ every folded record's serial; starting at
  // max(replayed, total) keeps serials unique across restarts without
  // persisting a separate counter.
  std::uint64_t seen = voucher_serial_.load(std::memory_order_relaxed);
  if (store_.total_sequence() > seen) {
    voucher_serial_.store(store_.total_sequence(), std::memory_order_relaxed);
  }
  for (std::size_t s = 0; s < store_.shards(); ++s) {
    compacted_seq_[s] = store_.oldest_on_disk(s) - 1;
  }
  if (config_.compact_interval_ms > 0) {
    compactor_ = std::jthread([this](std::stop_token token) { compaction_loop(token); });
  }
}

Kgcd::~Kgcd() {
  if (compactor_.joinable()) {
    compactor_.request_stop();
    compactor_cv_.notify_all();
  }
}

std::uint64_t Kgcd::now() const {
  if (config_.now) return config_.now();
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::seconds>(
                                        std::chrono::system_clock::now().time_since_epoch())
                                        .count());
}

VoucherChain Kgcd::issue_voucher(std::string_view scoped_id,
                                 std::span<const std::uint8_t> pk_bytes,
                                 cls::Epoch epoch, std::size_t shard) {
  const std::uint64_t issued_at = now();
  const std::uint64_t serial =
      voucher_serial_.fetch_add(1, std::memory_order_relaxed) + 1;
  Voucher voucher = voucher_issuer_.issue(scoped_id, pk_bytes, epoch, issued_at,
                                          issued_at + config_.voucher_ttl, serial);
  // The record logs into the *base* identity's shard — the one whose commit
  // lock the caller holds — never shard_index(scoped_id), which may differ
  // and whose compaction could race this append.
  if (!store_.append(shard, WalRecord{.type = WalRecordType::kVoucher,
                                      .epoch = epoch,
                                      .id = std::string(scoped_id),
                                      .serial = serial})) {
    return {};
  }
  return VoucherChain{std::move(voucher)};
}

Kgcd::EnrollOutcome Kgcd::enroll(std::string_view id,
                                 std::span<const std::uint8_t> pk_bytes) {
  EnrollOutcome outcome;
  // Enrollment takes the *base* identity; scoping is the daemon's job.
  // (scoped_identity would throw on a pre-scoped id — reject it here to keep
  // handle_frame total.)
  if (id.empty() || cls::parse_scoped_identity(id).has_value() ||
      id.find(cls::kEpochSeparator) != std::string_view::npos) {
    outcome.status = KgcStatus::kInvalidKey;
    return outcome;
  }
  const cls::Epoch epoch = directory_.epoch();
  const std::size_t shard = shard_index(id, store_.shards());
  {
    // The mutation+append pair runs under the shard's shared commit lock so
    // a concurrent compact_shard (exclusive on the same shard) can never
    // export the directory state and fold the log between the two — that
    // would drop an acknowledged record from both. Other shards' mutators
    // and compactions are unaffected.
    std::shared_lock commit(commit_locks_[shard]);
    const DirStatus admitted = directory_.enroll(id, pk_bytes, epoch);
    if (admitted != DirStatus::kOk) {
      outcome.status = to_status(admitted);
      return outcome;
    }
    // Decide-then-log: admission won the shard race, so this writer (and only
    // this writer) logs the record. The response is withheld until the append
    // is durable — acknowledged implies recoverable.
    if (!store_.append(shard,
                       WalRecord{.type = WalRecordType::kEnroll,
                                 .epoch = epoch,
                                 .id = std::string(id),
                                 .pk_bytes = crypto::Bytes(pk_bytes.begin(), pk_bytes.end())})) {
      outcome.status = KgcStatus::kStoreError;
      return outcome;
    }
    outcome.scoped_id = cls::scoped_identity(id, epoch);
    // Enroll-time voucher: same commit-lock span as the enrollment itself.
    // A failed voucher append degrades to "no voucher" — the enrollment is
    // already durable and acknowledged, and vouch() can reissue later.
    outcome.voucher = issue_voucher(outcome.scoped_id, pk_bytes, epoch, shard);
  }
  outcome.status = KgcStatus::kOk;
  outcome.epoch = epoch;
  outcome.partial_key = kgc_.extract_partial_key(outcome.scoped_id);
  maybe_auto_snapshot();
  return outcome;
}

Kgcd::VouchOutcome Kgcd::vouch(std::string_view id) {
  VouchOutcome outcome;
  // Accept the scoped form, but only for the binding the directory currently
  // stands behind: a stale or future epoch in the request is not vouchable.
  std::string_view base = id;
  std::optional<cls::Epoch> requested_epoch;
  if (const auto scoped = cls::parse_scoped_identity(id)) {
    base = id.substr(0, scoped->first.size());
    requested_epoch = scoped->second;
  }
  const KeyDirectory::LookupResult entry = directory_.lookup(base);
  if (entry.status != DirStatus::kOk) {
    outcome.status = to_status(entry.status);
    return outcome;
  }
  if (requested_epoch && *requested_epoch != entry.enrolled_epoch) {
    outcome.status = KgcStatus::kRevoked;
    return outcome;
  }
  const std::string scoped_id = cls::scoped_identity(base, entry.enrolled_epoch);
  const std::size_t shard = shard_index(base, store_.shards());
  {
    std::shared_lock commit(commit_locks_[shard]);
    outcome.chain = issue_voucher(scoped_id, entry.pk_bytes, entry.enrolled_epoch, shard);
  }
  if (outcome.chain.empty()) {
    outcome.status = KgcStatus::kStoreError;
    return outcome;
  }
  outcome.status = KgcStatus::kOk;
  maybe_auto_snapshot();
  return outcome;
}

Kgcd::LookupOutcome Kgcd::lookup(std::string_view id) const {
  const KeyDirectory::LookupResult result = directory_.lookup(id);
  return LookupOutcome{.status = to_status(result.status),
                       .pk_bytes = result.pk_bytes,
                       .enrolled_epoch = result.enrolled_epoch};
}

KgcStatus Kgcd::revoke(std::string_view id) {
  const cls::Epoch epoch = directory_.epoch();
  const std::size_t shard = shard_index(id, store_.shards());
  {
    std::shared_lock commit(commit_locks_[shard]);
    const DirStatus status = directory_.revoke(id, epoch);
    if (status != DirStatus::kOk) return to_status(status);
    if (!store_.append(shard, WalRecord{.type = WalRecordType::kRevoke,
                                        .epoch = epoch,
                                        .id = std::string(id)})) {
      return KgcStatus::kStoreError;
    }
  }
  maybe_auto_snapshot();
  return KgcStatus::kOk;
}

std::optional<std::size_t> Kgcd::compact_shard(std::size_t shard) {
  if (shard >= store_.shards()) return std::nullopt;
  // Exclusive on this shard only: every in-flight mutator of the shard has
  // either completed its append or not yet mutated the directory, so the
  // exported entries, the shard sequence, and the segments being folded all
  // describe the same committed prefix. Mutators of other shards never wait.
  std::unique_lock commit(commit_locks_[shard]);
  std::vector<SnapshotEntry> entries = directory_.export_shard(shard);
  if (!store_.compact_shard(shard, entries)) return std::nullopt;
  return entries.size();
}

std::optional<std::size_t> Kgcd::snapshot() {
  std::size_t total = 0;
  bool failed = false;
  for (std::size_t s = 0; s < store_.shards(); ++s) {
    const auto written = compact_shard(s);
    if (!written) {
      failed = true;
      continue;  // keep folding the other shards; report failure at the end
    }
    total += *written;
  }
  appends_since_snapshot_.store(0, std::memory_order_relaxed);
  if (failed) return std::nullopt;
  return total;
}

void Kgcd::maybe_auto_snapshot() {
  if (config_.snapshot_every == 0) return;
  if (appends_since_snapshot_.fetch_add(1, std::memory_order_relaxed) + 1 >=
      config_.snapshot_every) {
    (void)snapshot();
  }
}

void Kgcd::compaction_loop(std::stop_token token) {
  const auto interval = std::chrono::milliseconds(config_.compact_interval_ms);
  while (!token.stop_requested()) {
    {
      std::unique_lock lock(compactor_mutex_);
      compactor_cv_.wait_for(lock, token, interval, [] { return false; });
    }
    if (token.stop_requested()) return;
    for (std::size_t s = 0; s < store_.shards(); ++s) {
      if (token.stop_requested()) return;
      if (store_.shard_sequence(s) == compacted_seq_[s]) continue;  // clean
      if (compact_shard(s).has_value()) {
        compacted_seq_[s] = store_.oldest_on_disk(s) - 1;
      }
    }
  }
}

crypto::Bytes Kgcd::handle_frame(std::span<const std::uint8_t> frame) {
  const auto request = decode_kgc_request(frame);
  if (!request) {
    return encode_kgc_response(KgcResponse{.op = KgcOp::kNone,
                                           .request_id = 0,
                                           .status = KgcStatus::kMalformed});
  }
  KgcResponse response{.op = request->op, .request_id = request->request_id};
  switch (request->op) {
    case KgcOp::kEnroll: {
      const EnrollOutcome outcome = enroll(request->id, request->pk_bytes);
      response.status = outcome.status;
      response.epoch = outcome.epoch;
      if (outcome.status == KgcStatus::kOk) {
        const auto raw = outcome.partial_key.to_bytes();
        response.payload.assign(raw.begin(), raw.end());
      }
      break;
    }
    case KgcOp::kLookup: {
      const LookupOutcome outcome = lookup(request->id);
      response.status = outcome.status;
      response.epoch = outcome.enrolled_epoch;
      if (outcome.status == KgcStatus::kOk) response.payload = outcome.pk_bytes;
      break;
    }
    case KgcOp::kRevoke:
      response.status = revoke(request->id);
      response.epoch = directory_.epoch();
      break;
    case KgcOp::kVouch: {
      const VouchOutcome outcome = vouch(request->id);
      response.status = outcome.status;
      if (outcome.status == KgcStatus::kOk) {
        response.epoch = outcome.chain.front().epoch;
        response.payload = encode_voucher_chain(outcome.chain);
      }
      break;
    }
    case KgcOp::kSnapshot:
      response.status = snapshot().has_value() ? KgcStatus::kOk : KgcStatus::kStoreError;
      response.epoch = directory_.epoch();
      break;
    case KgcOp::kReplicate: {
      // Served lock-free: read_tail/read_snapshot_chunk take the shard's
      // internal mutex only long enough to copy bounds, and a batch that
      // loses a race with compaction simply makes the follower retry.
      const auto batch = build_replicate_batch(store_, request->shard, request->from_seq,
                                               request->cursor, kMaxReplicateItems);
      if (!batch) {
        response.status = KgcStatus::kMalformed;
        break;
      }
      response.status = KgcStatus::kOk;
      response.payload = encode_replicate_batch(*batch);
      break;
    }
    case KgcOp::kNone:  // unreachable: the decoder rejects kNone requests
      response.status = KgcStatus::kMalformed;
      break;
  }
  return encode_kgc_response(response);
}

}  // namespace mccls::kgc
