// On-disk record formats for the KGC daemon's persistence: CRC framing, WAL
// record and snapshot codecs. The store itself lives in kgc/logstore.hpp
// (segmented per-shard logs + per-shard snapshots); this header is the
// byte-level contract both it and the replication path build from, so
// corruption is detected before any payload byte is interpreted.
//
// Framing (one frame = one record on disk):
//   frame := length:u32  crc32:u32  payload(length)
// where crc32 covers the payload only. A reader walks frames front to back
// and stops at the first frame that is truncated or fails its CRC — a torn
// final frame (the expected crash shape for an append-only file) is
// indistinguishable from end-of-log, which is exactly the recovery
// semantics we want: every fsync-acknowledged record survives, the
// unacknowledged tail is dropped.
//
// Record payloads are versioned, total codecs in the style of svc/wire:
//   wal record      := version:u8=1  type:u8  epoch:u64  field(id)  field(pk)
//   snapshot entry  := version:u8=1  field(id)  field(pk)
//                      enrolled_epoch:u64  revoked:u8  revoked_epoch:u64
//   snapshot file   := frame(header)  frame(entry)*
//   header payload  := 'K' 'S'  version:u8=1  applied_seq:u64  count:u64
//
// Recovery invariant (tested by tests/test_logstore.cpp and the end-to-end
// crash test in tests/test_kgcd.cpp): replay(snapshot) ∘ replay(wal) after a
// hard kill reconstructs exactly the directory state whose mutations were
// acknowledged, with bit-identical public-key bytes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cls/epoch.hpp"
#include "crypto/encoding.hpp"

namespace mccls::kgc {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `data`.
/// Table-driven; the table is built once at first use.
std::uint32_t crc32(std::span<const std::uint8_t> data);

// ---- record codecs -------------------------------------------------------

inline constexpr std::uint8_t kStoreVersion = 1;
/// Same hardening rationale as svc::kMaxIdLen / cls::kMaxKeyfileIdLen: a
/// hostile length prefix is rejected before any read or allocation.
inline constexpr std::size_t kMaxStoreIdLen = 1024;
inline constexpr std::size_t kMaxStorePkLen = 256;
/// Frame-level cap on a declared payload length: generous relative to the
/// largest legitimate record (an enroll record is well under 2 KiB).
inline constexpr std::size_t kMaxFramePayload = 1 << 16;

enum class WalRecordType : std::uint8_t {
  kEnroll = 1,   ///< identity enrolled (or re-issued) with this public key
  kRevoke = 2,   ///< identity revoked at this epoch
  kVoucher = 3,  ///< voucher issued for this identity (serial bookkeeping)
};

/// One logged directory mutation. `pk_bytes` is the canonical
/// cls::PublicKey::to_bytes() serialization for enrolls, empty for revokes
/// and vouchers — the decoder enforces that shape, so decode∘encode is the
/// identity. `serial` trails the frame for voucher records only (older logs
/// keep decoding; enroll/revoke records never carry one): replaying it is
/// what keeps issued serials strictly increasing across restarts.
struct WalRecord {
  WalRecordType type = WalRecordType::kEnroll;
  cls::Epoch epoch = 0;
  std::string id;
  crypto::Bytes pk_bytes;
  std::uint64_t serial = 0;  ///< kVoucher only; 0 otherwise

  friend bool operator==(const WalRecord&, const WalRecord&) = default;
};

crypto::Bytes encode_wal_record(const WalRecord& record);
std::optional<WalRecord> decode_wal_record(std::span<const std::uint8_t> bytes);

/// One live directory entry inside a snapshot.
struct SnapshotEntry {
  std::string id;
  crypto::Bytes pk_bytes;
  cls::Epoch enrolled_epoch = 0;
  bool revoked = false;
  cls::Epoch revoked_epoch = 0;

  friend bool operator==(const SnapshotEntry&, const SnapshotEntry&) = default;
};

crypto::Bytes encode_snapshot_entry(const SnapshotEntry& entry);
std::optional<SnapshotEntry> decode_snapshot_entry(std::span<const std::uint8_t> bytes);

// ---- CRC framing ---------------------------------------------------------

/// Wraps `payload` in a length+CRC frame.
crypto::Bytes frame_payload(std::span<const std::uint8_t> payload);

struct Frame {
  crypto::Bytes payload;
  std::size_t consumed = 0;  ///< total frame size including the 8-byte header
};

/// Reads one frame from the front of `bytes`. nullopt when the header or
/// payload is truncated, the declared length exceeds kMaxFramePayload, or
/// the CRC does not match — all of which a replayer treats as end-of-log.
std::optional<Frame> read_frame(std::span<const std::uint8_t> bytes);

// ---- snapshot file -------------------------------------------------------

struct Snapshot {
  std::uint64_t applied_seq = 0;  ///< WAL records folded into this snapshot
  std::vector<SnapshotEntry> entries;

  friend bool operator==(const Snapshot&, const Snapshot&) = default;
};

/// Whole-file snapshot codec (total). Encoding is a framed header followed
/// by one framed entry per element; decoding validates every frame and the
/// header's declared count (trailing bytes after the last entry reject).
crypto::Bytes encode_snapshot(const Snapshot& snapshot);
std::optional<Snapshot> decode_snapshot(std::span<const std::uint8_t> bytes);

// ---- recovery ------------------------------------------------------------

/// Result of opening a store and replaying its state (logstore.hpp; summed
/// across shards).
struct RecoveryReport {
  std::uint64_t snapshot_entries = 0;  ///< entries loaded from snapshots
  std::uint64_t wal_records = 0;       ///< records replayed from the WAL
  std::uint64_t torn_bytes = 0;        ///< bytes discarded from torn tails
  bool snapshot_corrupt = false;       ///< a snapshot failed to decode (ignored)
};

}  // namespace mccls::kgc
