#include "kgc/wire.hpp"

namespace mccls::kgc {

namespace {

constexpr std::uint8_t kKindRequest = 1;
constexpr std::uint8_t kKindResponse = 2;

bool read_header(crypto::ByteReader& reader, std::uint8_t kind) {
  const auto version = reader.get_u8();
  const auto got_kind = reader.get_u8();
  return version && *version == kKgcWireVersion && got_kind && *got_kind == kind;
}

/// The op-dependent canonical shape (see file comment in wire.hpp).
bool request_shape_ok(KgcOp op, const std::string& id, const crypto::Bytes& pk) {
  switch (op) {
    case KgcOp::kEnroll:
      // Enrollment takes the *base* identity; scoping ("ID@epoch-N") is the
      // daemon's job, and cls::scoped_identity throws std::invalid_argument
      // on an id already containing the separator. The daemon also guards
      // (Kgcd::enroll), but a malformed frame should die at wire admission,
      // not deep in request handling. Lookups of scoped identities stay
      // legitimate — only enroll carries this restriction.
      return !id.empty() && !pk.empty() &&
             id.find(cls::kEpochSeparator) == std::string::npos;
    case KgcOp::kLookup:
    case KgcOp::kRevoke:
    case KgcOp::kVouch:
      return !id.empty() && pk.empty();
    case KgcOp::kSnapshot:
    case KgcOp::kReplicate:
      return id.empty() && pk.empty();
    case KgcOp::kNone:
      return false;
  }
  return false;
}

bool response_payload_ok(KgcOp op, KgcStatus status, const crypto::Bytes& payload) {
  // Only successful enroll/lookup/vouch/replicate responses carry a payload.
  const bool may_carry = status == KgcStatus::kOk &&
                         (op == KgcOp::kEnroll || op == KgcOp::kLookup ||
                          op == KgcOp::kVouch || op == KgcOp::kReplicate);
  return may_carry ? !payload.empty() : payload.empty();
}

/// Per-op payload bound: vouch responses carry a whole voucher chain,
/// replicate responses a whole batch.
std::size_t response_payload_cap(KgcOp op) {
  if (op == KgcOp::kReplicate) return kMaxKgcReplicateLen;
  return op == KgcOp::kVouch ? kMaxKgcVoucherLen : kMaxKgcPayloadLen;
}

}  // namespace

crypto::Bytes encode_kgc_request(const KgcRequest& request) {
  crypto::ByteWriter w;
  w.put_u8(kKgcWireVersion);
  w.put_u8(kKindRequest);
  w.put_u8(static_cast<std::uint8_t>(request.op));
  w.put_u64(request.request_id);
  w.put_field(request.id);
  w.put_field(request.pk_bytes);
  // The replication cursor trails the frame for kReplicate only, so every
  // pre-replication frame is byte-identical to what it was before the op
  // existed (and the frozen corpus stays valid).
  if (request.op == KgcOp::kReplicate) {
    w.put_u32(request.shard);
    w.put_u64(request.from_seq);
    w.put_u64(request.cursor);
  }
  return w.take();
}

std::optional<KgcRequest> decode_kgc_request(std::span<const std::uint8_t> bytes) {
  crypto::ByteReader reader(bytes);
  if (!read_header(reader, kKindRequest)) return std::nullopt;
  const auto op = reader.get_u8();
  const auto request_id = reader.get_u64();
  if (!op || !request_id) return std::nullopt;
  if (*op == 0 || *op > static_cast<std::uint8_t>(KgcOp::kReplicate)) {
    return std::nullopt;
  }
  const auto id = reader.get_field(kMaxKgcIdLen);
  const auto pk = reader.get_field(kMaxKgcPayloadLen);
  if (!id || !pk) return std::nullopt;
  KgcRequest request{.op = KgcOp{*op},
                     .request_id = *request_id,
                     .id = std::string(id->begin(), id->end()),
                     .pk_bytes = *pk};
  if (request.op == KgcOp::kReplicate) {
    const auto shard = reader.get_u32();
    const auto from_seq = reader.get_u64();
    const auto cursor = reader.get_u64();
    if (!shard || !from_seq || !cursor) return std::nullopt;
    // A bootstrap cursor only makes sense on a snapshot request (from_seq 0);
    // rejecting the combination keeps the frame canonical.
    if (*from_seq != 0 && *cursor != 0) return std::nullopt;
    request.shard = *shard;
    request.from_seq = *from_seq;
    request.cursor = *cursor;
  }
  if (!reader.exhausted()) return std::nullopt;
  if (!request_shape_ok(request.op, request.id, request.pk_bytes)) return std::nullopt;
  return request;
}

crypto::Bytes encode_kgc_response(const KgcResponse& response) {
  crypto::ByteWriter w;
  w.put_u8(kKgcWireVersion);
  w.put_u8(kKindResponse);
  w.put_u8(static_cast<std::uint8_t>(response.op));
  w.put_u64(response.request_id);
  w.put_u8(static_cast<std::uint8_t>(response.status));
  w.put_u64(response.epoch);
  w.put_field(response.payload);
  return w.take();
}

std::optional<KgcResponse> decode_kgc_response(std::span<const std::uint8_t> bytes) {
  crypto::ByteReader reader(bytes);
  if (!read_header(reader, kKindResponse)) return std::nullopt;
  const auto op = reader.get_u8();
  const auto request_id = reader.get_u64();
  const auto status = reader.get_u8();
  const auto epoch = reader.get_u64();
  if (!op || !request_id || !status || !epoch) return std::nullopt;
  if (*op > static_cast<std::uint8_t>(KgcOp::kReplicate)) return std::nullopt;
  if (*status > static_cast<std::uint8_t>(KgcStatus::kReadOnly)) return std::nullopt;
  const auto payload = reader.get_field(response_payload_cap(KgcOp{*op}));
  if (!payload || !reader.exhausted()) return std::nullopt;
  KgcResponse response{.op = KgcOp{*op},
                       .request_id = *request_id,
                       .status = KgcStatus{*status},
                       .epoch = *epoch,
                       .payload = *payload};
  if (!response_payload_ok(response.op, response.status, response.payload)) {
    return std::nullopt;
  }
  return response;
}

}  // namespace mccls::kgc
