#include "kgc/replica.hpp"

#include <algorithm>

namespace mccls::kgc {

using crypto::Bytes;

// ---- batch codec ---------------------------------------------------------

crypto::Bytes encode_replicate_batch(const ReplicateBatch& batch) {
  crypto::ByteWriter w;
  w.put_u8(kStoreVersion);
  w.put_u32(batch.shard);
  w.put_u8(static_cast<std::uint8_t>(batch.kind));
  if (batch.kind == ReplicateKind::kSnapshotChunk) {
    w.put_u64(batch.applied_seq);
    w.put_u64(batch.cursor);
    w.put_u64(batch.total);
    w.put_u32(static_cast<std::uint32_t>(batch.entries.size()));
    for (const SnapshotEntry& entry : batch.entries) {
      w.put_field(encode_snapshot_entry(entry));
    }
  } else {
    w.put_u64(batch.first_seq);
    w.put_u8(batch.caught_up ? 1 : 0);
    w.put_u32(static_cast<std::uint32_t>(batch.records.size()));
    for (std::size_t i = 0; i < batch.records.size(); ++i) {
      w.put_u64(batch.first_seq + i);
      w.put_field(encode_wal_record(batch.records[i]));
    }
  }
  return w.take();
}

std::optional<ReplicateBatch> decode_replicate_batch(std::span<const std::uint8_t> bytes) {
  crypto::ByteReader r(bytes);
  const auto version = r.get_u8();
  if (!version || *version != kStoreVersion) return std::nullopt;
  const auto shard = r.get_u32();
  const auto kind = r.get_u8();
  if (!shard || !kind) return std::nullopt;
  if (*shard >= kMaxLogShards) return std::nullopt;
  ReplicateBatch batch;
  batch.shard = *shard;
  if (*kind == static_cast<std::uint8_t>(ReplicateKind::kSnapshotChunk)) {
    batch.kind = ReplicateKind::kSnapshotChunk;
    const auto applied = r.get_u64();
    const auto cursor = r.get_u64();
    const auto total = r.get_u64();
    const auto count = r.get_u32();
    if (!applied || !cursor || !total || !count) return std::nullopt;
    if (*count > kMaxReplicateItems) return std::nullopt;
    // The page must lie inside the declared snapshot: cursor + count ≤ total
    // (checked without overflow).
    if (*count > *total || *cursor > *total - *count) return std::nullopt;
    batch.applied_seq = *applied;
    batch.cursor = *cursor;
    batch.total = *total;
    batch.entries.reserve(*count);
    for (std::uint32_t i = 0; i < *count; ++i) {
      const auto field = r.get_field(kMaxFramePayload);
      if (!field) return std::nullopt;
      auto entry = decode_snapshot_entry(*field);
      if (!entry) return std::nullopt;
      batch.entries.push_back(std::move(*entry));
    }
  } else if (*kind == static_cast<std::uint8_t>(ReplicateKind::kRecords)) {
    batch.kind = ReplicateKind::kRecords;
    const auto first = r.get_u64();
    const auto caught = r.get_u8();
    const auto count = r.get_u32();
    if (!first || !caught || !count) return std::nullopt;
    if (*first == 0 || *caught > 1 || *count > kMaxReplicateItems) return std::nullopt;
    batch.first_seq = *first;
    batch.caught_up = *caught == 1;
    batch.records.reserve(*count);
    for (std::uint32_t i = 0; i < *count; ++i) {
      const auto seq = r.get_u64();
      if (!seq) return std::nullopt;
      const auto field = r.get_field(kMaxFramePayload);
      if (!field) return std::nullopt;
      // Strictly consecutive sequences — a batch with a gap would silently
      // desynchronize the follower, so it dies at the decoder.
      if (*seq != *first + i) return std::nullopt;
      auto record = decode_wal_record(*field);
      if (!record) return std::nullopt;
      batch.records.push_back(std::move(*record));
    }
  } else {
    return std::nullopt;
  }
  if (!r.exhausted()) return std::nullopt;
  return batch;
}

// ---- primary-side batch builder ------------------------------------------

std::optional<ReplicateBatch> build_replicate_batch(const LogStore& store,
                                                    std::uint32_t shard,
                                                    std::uint64_t from_seq,
                                                    std::uint64_t cursor,
                                                    std::size_t max_items) {
  if (shard >= store.shards()) return std::nullopt;
  const std::size_t limit = std::min(max_items == 0 ? 1 : max_items, kMaxReplicateItems);
  // Byte budget so the encoded batch always fits a kReplicate response
  // payload; headroom covers the batch header and per-item framing slop.
  constexpr std::size_t kBudget = kMaxKgcReplicateLen - 512;
  ReplicateBatch batch;
  batch.shard = shard;
  if (from_seq != 0) {
    if (auto tail = store.read_tail(shard, from_seq, limit)) {
      batch.kind = ReplicateKind::kRecords;
      batch.first_seq = from_seq;
      std::size_t bytes = 0;
      for (WalRecord& record : tail->records) {
        const std::size_t item = encode_wal_record(record).size() + 12;
        if (!batch.records.empty() && bytes + item > kBudget) break;
        bytes += item;
        batch.records.push_back(std::move(record));
      }
      batch.caught_up =
          tail->caught_up && batch.records.size() == tail->records.size();
      return batch;
    }
    // Asking past the log is a protocol error; asking *before* it means the
    // range was compacted away — fall back to snapshot bootstrap at page 0.
    if (from_seq > store.shard_sequence(shard) + 1) return std::nullopt;
    cursor = 0;
  }
  const auto chunk = store.read_snapshot_chunk(shard, cursor, limit);
  if (!chunk) return std::nullopt;
  batch.kind = ReplicateKind::kSnapshotChunk;
  batch.applied_seq = chunk->applied_seq;
  batch.cursor = cursor;
  batch.total = chunk->total;
  std::size_t bytes = 0;
  for (const SnapshotEntry& entry : chunk->entries) {
    const std::size_t item = encode_snapshot_entry(entry).size() + 8;
    if (!batch.entries.empty() && bytes + item > kBudget) break;
    bytes += item;
    batch.entries.push_back(entry);
  }
  return batch;
}

// ---- the replica ---------------------------------------------------------

namespace {

KgcStatus to_status(DirStatus status) {
  switch (status) {
    case DirStatus::kOk:
      return KgcStatus::kOk;
    case DirStatus::kUnknownId:
      return KgcStatus::kUnknownId;
    case DirStatus::kRevoked:
      return KgcStatus::kRevoked;
    case DirStatus::kInvalidKey:
      return KgcStatus::kInvalidKey;
    case DirStatus::kConflict:
      return KgcStatus::kConflict;
  }
  return KgcStatus::kStoreError;
}

}  // namespace

Replica::Replica(ReplicaConfig config, Transport transport)
    : config_(std::move(config)),
      transport_(std::move(transport)),
      directory_(DirectoryConfig{.shards = config_.shards,
                                 .lru_per_shard = config_.lru_per_shard,
                                 .epoch = config_.epoch,
                                 .grace = config_.grace}),
      store_(LogStoreConfig{.dir = config_.data_dir,
                            .shards = config_.shards,
                            .fsync = config_.fsync,
                            .segment_bytes = config_.segment_bytes}) {
  directory_.set_metrics(&metrics_);
  store_.set_metrics(&metrics_);
  // A replica's store replays exactly like a primary's — a restarted
  // follower resumes tailing from its recovered sequence instead of
  // re-bootstrapping the world.
  recovery_ = store_.recover(
      [this](std::size_t, const SnapshotEntry& entry) { directory_.apply(entry); },
      [this](std::size_t, const WalRecord& record) { directory_.apply(record); });
}

std::optional<ReplicateBatch> Replica::fetch(std::uint32_t shard,
                                             std::uint64_t from_seq,
                                             std::uint64_t cursor) {
  const KgcRequest request{.op = KgcOp::kReplicate,
                           .request_id = next_request_id_++,
                           .shard = shard,
                           .from_seq = from_seq,
                           .cursor = cursor};
  const auto reply = transport_(encode_kgc_request(request));
  if (!reply) return std::nullopt;
  const auto response = decode_kgc_response(*reply);
  if (!response || response->op != KgcOp::kReplicate ||
      response->status != KgcStatus::kOk) {
    return std::nullopt;
  }
  return decode_replicate_batch(response->payload);
}

bool Replica::sync_shard(std::size_t shard) {
  const auto shard32 = static_cast<std::uint32_t>(shard);
  std::vector<SnapshotEntry> staged;
  std::uint64_t staged_applied = 0;
  std::uint64_t cursor = 0;
  bool bootstrapping = false;
  for (;;) {
    const std::uint64_t from =
        bootstrapping ? 0 : store_.shard_sequence(shard) + 1;
    auto batch = fetch(shard32, from, bootstrapping ? cursor : 0);
    if (!batch || batch->shard != shard32) return false;
    if (batch->kind == ReplicateKind::kSnapshotChunk) {
      if (!bootstrapping || batch->applied_seq != staged_applied) {
        // Entering bootstrap — or the upstream compacted again mid-stream
        // and this chunk belongs to a *newer* snapshot than the staged pages.
        // Pages of different snapshots must never mix, so restart at page 0.
        bootstrapping = true;
        staged_applied = batch->applied_seq;
        staged.clear();
        cursor = 0;
        if (batch->cursor != 0) continue;
      }
      if (batch->cursor != cursor) return false;  // protocol violation
      metrics_.on_replica_snapshot_entries(batch->entries.size());
      cursor += batch->entries.size();
      staged.insert(staged.end(),
                    std::make_move_iterator(batch->entries.begin()),
                    std::make_move_iterator(batch->entries.end()));
      if (cursor >= batch->total) {
        // Snapshot complete: make it durable first (install is the same
        // temp+rename protocol as compaction), then project into the
        // directory — a crash between the two replays the snapshot on boot.
        if (!store_.install_snapshot(shard, staged, staged_applied)) return false;
        for (const SnapshotEntry& entry : staged) directory_.apply(entry);
        staged.clear();
        bootstrapping = false;
      }
      continue;
    }
    // Records: append locally (durable per fsync policy), then apply. The
    // voucher records ride along purely as serial bookkeeping.
    if (bootstrapping) return false;  // protocol violation
    if (batch->first_seq != store_.shard_sequence(shard) + 1) return false;
    for (const WalRecord& record : batch->records) {
      const auto assigned = store_.append(shard, record);
      if (!assigned) return false;
      directory_.apply(record);
    }
    metrics_.on_replica_records(batch->records.size());
    if (batch->caught_up) return true;
  }
}

bool Replica::sync() {
  bool ok = true;
  for (std::size_t s = 0; s < store_.shards(); ++s) ok = sync_shard(s) && ok;
  return ok;
}

crypto::Bytes Replica::handle_frame(std::span<const std::uint8_t> frame) {
  const auto request = decode_kgc_request(frame);
  if (!request) {
    return encode_kgc_response(KgcResponse{.op = KgcOp::kNone,
                                           .request_id = 0,
                                           .status = KgcStatus::kMalformed});
  }
  KgcResponse response{.op = request->op, .request_id = request->request_id};
  switch (request->op) {
    case KgcOp::kLookup: {
      const KeyDirectory::LookupResult result = directory_.lookup(request->id);
      response.status = to_status(result.status);
      response.epoch = result.enrolled_epoch;
      if (result.status == DirStatus::kOk) response.payload = result.pk_bytes;
      break;
    }
    case KgcOp::kReplicate: {
      const auto batch = build_replicate_batch(store_, request->shard,
                                               request->from_seq, request->cursor,
                                               config_.batch_limit);
      if (batch) {
        response.status = KgcStatus::kOk;
        response.payload = encode_replicate_batch(*batch);
      } else {
        response.status = KgcStatus::kMalformed;
      }
      response.epoch = directory_.epoch();
      break;
    }
    case KgcOp::kEnroll:
    case KgcOp::kRevoke:
    case KgcOp::kVouch:
    case KgcOp::kSnapshot:
      // Mutations belong to the primary. kReadOnly (not kUnavailable-like
      // kStoreError) tells the client this endpoint will *never* take the
      // write, so it should re-route rather than retry here.
      response.status = KgcStatus::kReadOnly;
      response.epoch = directory_.epoch();
      break;
    case KgcOp::kNone:  // unreachable: the decoder rejects kNone requests
      response.status = KgcStatus::kMalformed;
      break;
  }
  return encode_kgc_response(response);
}

// ---- remote resolver -----------------------------------------------------

svc::ResolveResult RemoteResolver::resolve(std::string_view id) {
  const KgcRequest request{
      .op = KgcOp::kLookup,
      .request_id = next_request_id_.fetch_add(1, std::memory_order_relaxed),
      .id = std::string(id)};
  const auto reply = transport_(encode_kgc_request(request));
  if (!reply) return svc::ResolveResult::unavailable();
  const auto response = decode_kgc_response(*reply);
  if (!response || response->op != KgcOp::kLookup) {
    return svc::ResolveResult::unavailable();
  }
  switch (response->status) {
    case KgcStatus::kOk: {
      const auto pk = cls::PublicKey::from_bytes(response->payload);
      if (!pk) return svc::ResolveResult::unavailable();  // mangled transport
      return svc::ResolveResult::ok(*pk);
    }
    case KgcStatus::kUnknownId:
    case KgcStatus::kRevoked:
      return svc::ResolveResult::not_vouched();  // definitive trust verdicts
    default:
      return svc::ResolveResult::unavailable();
  }
}

}  // namespace mccls::kgc
