#include "kgc/logstore.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>

namespace mccls::kgc {

namespace fs = std::filesystem;
using crypto::Bytes;

// ---- segment codec -------------------------------------------------------

crypto::Bytes encode_segment_header(const SegmentHeader& header) {
  crypto::ByteWriter w;
  w.put_u8(kSegmentMagic0);
  w.put_u8(kSegmentMagic1);
  w.put_u8(kStoreVersion);
  w.put_u32(header.shard);
  w.put_u64(header.base_seq);
  return w.take();
}

std::optional<SegmentHeader> decode_segment_header(std::span<const std::uint8_t> bytes) {
  crypto::ByteReader r(bytes);
  const auto m0 = r.get_u8();
  const auto m1 = r.get_u8();
  const auto version = r.get_u8();
  const auto shard = r.get_u32();
  const auto base = r.get_u64();
  if (!m0 || *m0 != kSegmentMagic0 || !m1 || *m1 != kSegmentMagic1 || !version ||
      *version != kStoreVersion || !shard || !base || !r.exhausted()) {
    return std::nullopt;
  }
  if (*shard >= kMaxLogShards) return std::nullopt;
  if (*base == 0) return std::nullopt;  // sequences are 1-based
  return SegmentHeader{.shard = *shard, .base_seq = *base};
}

crypto::Bytes encode_segment(const SegmentImage& image) {
  crypto::ByteWriter w;
  w.put_raw(frame_payload(encode_segment_header(image.header)));
  for (const WalRecord& record : image.records) {
    w.put_raw(frame_payload(encode_wal_record(record)));
  }
  return w.take();
}

std::optional<SegmentImage> decode_segment(std::span<const std::uint8_t> bytes) {
  const auto header_frame = read_frame(bytes);
  if (!header_frame) return std::nullopt;
  const auto header = decode_segment_header(header_frame->payload);
  if (!header) return std::nullopt;
  SegmentImage image;
  image.header = *header;
  std::span<const std::uint8_t> rest = bytes.subspan(header_frame->consumed);
  while (!rest.empty()) {
    const auto frame = read_frame(rest);
    if (!frame) return std::nullopt;
    auto record = decode_wal_record(frame->payload);
    if (!record) return std::nullopt;
    image.records.push_back(std::move(*record));
    rest = rest.subspan(frame->consumed);
  }
  return image;
}

// ---- helpers -------------------------------------------------------------

namespace {

std::optional<Bytes> read_whole_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  return Bytes{std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

bool write_all(int fd, std::span<const std::uint8_t> bytes) {
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ::ssize_t n = ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

/// Parses "seg-<base>.wal" → base; nullopt for any other filename.
std::optional<std::uint64_t> parse_segment_base(const std::string& name) {
  constexpr std::string_view prefix = "seg-";
  constexpr std::string_view suffix = ".wal";
  if (name.size() <= prefix.size() + suffix.size()) return std::nullopt;
  if (name.compare(0, prefix.size(), prefix) != 0) return std::nullopt;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return std::nullopt;
  }
  const std::string digits = name.substr(prefix.size(),
                                         name.size() - prefix.size() - suffix.size());
  if (digits.empty()) return std::nullopt;
  std::uint64_t base = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    base = base * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return base;
}

}  // namespace

// ---- the store -----------------------------------------------------------

LogStore::LogStore(LogStoreConfig config) : config_(std::move(config)) {
  if (config_.shards == 0) config_.shards = 1;
  if (config_.shards > kMaxLogShards) config_.shards = kMaxLogShards;
  if (config_.segment_bytes == 0) config_.segment_bytes = 1;
  std::error_code ec;
  fs::create_directories(config_.dir, ec);
  logs_ = std::make_unique<ShardLog[]>(config_.shards);
}

LogStore::~LogStore() {
  for (std::size_t s = 0; s < config_.shards; ++s) {
    std::lock_guard lock(logs_[s].mutex);
    if (logs_[s].fd >= 0) ::close(logs_[s].fd);
  }
}

std::string LogStore::shard_dir(std::size_t shard) const {
  return (fs::path(config_.dir) / ("shard-" + std::to_string(shard))).string();
}

std::string LogStore::segment_path(std::size_t shard, std::uint64_t base) const {
  return (fs::path(shard_dir(shard)) / ("seg-" + std::to_string(base) + ".wal"))
      .string();
}

std::string LogStore::snapshot_path(std::size_t shard) const {
  return (fs::path(shard_dir(shard)) / "snapshot.bin").string();
}

bool LogStore::open_active_segment(ShardLog& log, std::size_t shard,
                                   std::uint64_t base) {
  const std::string path = segment_path(shard, base);
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0600);
  if (fd < 0) return false;
  const Bytes header = frame_payload(encode_segment_header(
      SegmentHeader{.shard = static_cast<std::uint32_t>(shard), .base_seq = base}));
  // The header must be durable before any record is acknowledged out of this
  // segment: a record frame is unreachable without the header that names its
  // base sequence.
  if (!write_all(fd, header) || (config_.fsync && ::fsync(fd) != 0)) {
    ::close(fd);
    return false;
  }
  if (config_.fsync && !fsync_shard_dir(shard)) {
    ::close(fd);
    return false;
  }
  log.fd = fd;
  log.active_base = base;
  log.active_bytes = header.size();
  return true;
}

bool LogStore::fsync_shard_dir(std::size_t shard) const {
  const int dir_fd = ::open(shard_dir(shard).c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd < 0) return false;
  const bool synced = ::fsync(dir_fd) == 0;
  ::close(dir_fd);
  return synced;
}

RecoveryReport LogStore::recover(
    const std::function<void(std::size_t, const SnapshotEntry&)>& on_entry,
    const std::function<void(std::size_t, const WalRecord&)>& on_record) {
  RecoveryReport report;
  for (std::size_t s = 0; s < config_.shards; ++s) {
    recover_shard(s, report, on_entry, on_record);
  }
  return report;
}

void LogStore::recover_shard(
    std::size_t shard, RecoveryReport& report,
    const std::function<void(std::size_t, const SnapshotEntry&)>& on_entry,
    const std::function<void(std::size_t, const WalRecord&)>& on_record) {
  ShardLog& log = logs_[shard];
  std::lock_guard lock(log.mutex);

  std::error_code ec;
  fs::create_directories(shard_dir(shard), ec);
  // A crash between temp-write and rename leaves snapshot.bin.tmp behind; it
  // was never the live snapshot, so it is plain garbage here.
  fs::remove(snapshot_path(shard) + ".tmp", ec);

  if (const auto snapshot_bytes = read_whole_file(snapshot_path(shard))) {
    if (const auto snapshot = decode_snapshot(*snapshot_bytes)) {
      for (const SnapshotEntry& entry : snapshot->entries) {
        if (on_entry) on_entry(shard, entry);
        ++report.snapshot_entries;
      }
      log.snapshot_seq = snapshot->applied_seq;
      log.seq = snapshot->applied_seq;
    } else if (!snapshot_bytes->empty()) {
      // Same stance as the old WalStore: a corrupt snapshot cannot be
      // partially trusted, so replay from the segments alone and surface the
      // fact to the operator.
      report.snapshot_corrupt = true;
    }
  }

  std::vector<std::uint64_t> bases;
  for (const auto& dirent : fs::directory_iterator(shard_dir(shard), ec)) {
    if (const auto base = parse_segment_base(dirent.path().filename().string())) {
      bases.push_back(*base);
    }
  }
  std::sort(bases.begin(), bases.end());

  // Walk segments in base order. The first defect — unreadable header, header
  // that disagrees with the filename or shard, a base that leaves a sequence
  // gap, or a torn/corrupt record frame — ends the recoverable log: that
  // segment is truncated to its last good frame and every later segment is
  // deleted (their records were never acknowledged, or they are leftovers of
  // an interrupted compaction already covered by the snapshot).
  std::vector<std::uint64_t> kept;
  bool tail_ended = false;
  for (std::size_t i = 0; i < bases.size(); ++i) {
    const std::uint64_t base = bases[i];
    const std::string path = segment_path(shard, base);
    if (tail_ended) {
      fs::remove(path, ec);
      continue;
    }
    const auto bytes = read_whole_file(path);
    const auto header_frame = bytes ? read_frame(*bytes) : std::nullopt;
    const auto header =
        header_frame ? decode_segment_header(header_frame->payload) : std::nullopt;
    if (!header || header->shard != shard || header->base_seq != base ||
        base > std::max(log.seq, log.snapshot_seq) + 1) {
      fs::remove(path, ec);
      if (bytes) report.torn_bytes += bytes->size();
      tail_ended = true;
      continue;
    }
    std::size_t valid_end = header_frame->consumed;
    std::span<const std::uint8_t> rest =
        std::span<const std::uint8_t>(*bytes).subspan(header_frame->consumed);
    std::uint64_t seq = base - 1;  // sequence of the last record walked
    while (!rest.empty()) {
      const auto frame = read_frame(rest);
      const auto record = frame ? decode_wal_record(frame->payload) : std::nullopt;
      if (!record) break;  // torn or corrupt: end-of-log
      ++seq;
      if (seq > log.snapshot_seq) {
        if (on_record) on_record(shard, *record);
        ++report.wal_records;
        log.seq = seq;
      }
      valid_end += frame->consumed;
      rest = rest.subspan(frame->consumed);
    }
    if (!rest.empty()) {
      report.torn_bytes += rest.size();
      fs::resize_file(path, valid_end, ec);
      tail_ended = true;
    }
    if (seq < base || seq <= log.snapshot_seq) {
      // Every record here (if any) is already folded into the snapshot — the
      // leftover of a compaction that crashed between the snapshot rename and
      // the segment deletions. Finish the job.
      fs::remove(path, ec);
      continue;
    }
    kept.push_back(base);
  }

  // Reopen the newest surviving segment for append; a shard with nothing
  // left starts a fresh segment right after its sequence.
  if (!kept.empty()) {
    const std::uint64_t active = kept.back();
    kept.pop_back();
    const std::string path = segment_path(shard, active);
    const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND, 0600);
    if (fd >= 0) {
      log.fd = fd;
      log.active_base = active;
      log.active_bytes = static_cast<std::size_t>(fs::file_size(path, ec));
      log.sealed_bases = std::move(kept);
      return;
    }
  }
  log.sealed_bases = std::move(kept);
  open_active_segment(log, shard, log.seq + 1);
}

std::optional<std::uint64_t> LogStore::append(std::size_t shard,
                                              const WalRecord& record) {
  if (shard >= config_.shards) return std::nullopt;
  const Bytes frame = frame_payload(encode_wal_record(record));
  ShardLog& log = logs_[shard];
  std::lock_guard lock(log.mutex);
  if (log.fd < 0) return std::nullopt;
  // Seal + rotate once the active segment is past the size target and holds
  // at least one record (a header-only segment must accept its first record,
  // whatever the configured size).
  if (log.active_bytes >= config_.segment_bytes && log.seq >= log.active_base) {
    if (::fsync(log.fd) != 0 || ::close(log.fd) != 0) {
      log.fd = -1;  // poisoned: the seal boundary is unknown
      return std::nullopt;
    }
    log.fd = -1;
    log.sealed_bases.push_back(log.active_base);
    if (metrics_ != nullptr) metrics_->on_segment_sealed();
    if (!open_active_segment(log, shard, log.seq + 1)) return std::nullopt;
  }
  const auto start = std::chrono::steady_clock::now();
  // Same frame-boundary contract as the old WalStore: a failed write rolls
  // back to the boundary, and a failed rollback poisons the shard so nothing
  // can be acknowledged after a torn frame.
  const ::off_t base_off = ::lseek(log.fd, 0, SEEK_END);
  if (base_off < 0) {
    ::close(log.fd);
    log.fd = -1;
    return std::nullopt;
  }
  std::size_t written = 0;
  while (written < frame.size()) {
    const ::ssize_t n =
        ::write(log.fd, frame.data() + written, frame.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (written > 0 && ::ftruncate(log.fd, base_off) != 0) {
        ::close(log.fd);
        log.fd = -1;
      }
      return std::nullopt;
    }
    written += static_cast<std::size_t>(n);
  }
  if (config_.fsync && ::fsync(log.fd) != 0) return std::nullopt;
  if (metrics_ != nullptr) {
    metrics_->on_wal_fsync_ns(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count()));
  }
  log.active_bytes += frame.size();
  return ++log.seq;
}

bool LogStore::write_shard_snapshot(std::size_t shard, const Snapshot& snapshot) {
  const Bytes encoded = encode_snapshot(snapshot);
  const std::string live = snapshot_path(shard);
  const std::string tmp = live + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0600);
  if (fd < 0) return false;
  if (!write_all(fd, encoded) || (config_.fsync && ::fsync(fd) != 0)) {
    ::close(fd);
    return false;
  }
  if (::close(fd) != 0) return false;
  if (compaction_hook_) compaction_hook_(shard, CompactionPhase::kBeforeSnapshotRename);
  std::error_code ec;
  fs::rename(tmp, live, ec);
  if (ec) return false;
  if (config_.fsync && !fsync_shard_dir(shard)) return false;
  if (compaction_hook_) compaction_hook_(shard, CompactionPhase::kAfterSnapshotRename);
  return true;
}

bool LogStore::drop_segments(ShardLog& log, std::size_t shard) {
  if (log.fd >= 0) {
    ::close(log.fd);
    log.fd = -1;
  }
  std::error_code ec;
  bool first = true;
  for (const std::uint64_t base : log.sealed_bases) {
    fs::remove(segment_path(shard, base), ec);
    if (first && compaction_hook_) {
      compaction_hook_(shard, CompactionPhase::kAfterFirstUnlink);
    }
    first = false;
  }
  fs::remove(segment_path(shard, log.active_base), ec);
  if (first && compaction_hook_) {
    compaction_hook_(shard, CompactionPhase::kAfterFirstUnlink);
  }
  log.sealed_bases.clear();
  if (config_.fsync && !fsync_shard_dir(shard)) return false;
  return open_active_segment(log, shard, log.seq + 1);
}

bool LogStore::compact_shard(std::size_t shard,
                             const std::vector<SnapshotEntry>& entries) {
  if (shard >= config_.shards) return false;
  ShardLog& log = logs_[shard];
  std::lock_guard lock(log.mutex);
  if (log.fd < 0) return false;
  Snapshot snapshot;
  snapshot.applied_seq = log.seq;
  snapshot.entries = entries;
  if (!write_shard_snapshot(shard, snapshot)) return false;
  log.snapshot_seq = log.seq;
  // Snapshot durable → every segment is folded in; delete them and start a
  // fresh one. A crash anywhere in here is recovered by recover_shard(): the
  // surviving segments' records are all ≤ snapshot_seq, so they are garbage.
  if (!drop_segments(log, shard)) return false;
  if (metrics_ != nullptr) metrics_->on_compaction();
  return true;
}

bool LogStore::install_snapshot(std::size_t shard,
                                const std::vector<SnapshotEntry>& entries,
                                std::uint64_t applied_seq) {
  if (shard >= config_.shards) return false;
  ShardLog& log = logs_[shard];
  std::lock_guard lock(log.mutex);
  Snapshot snapshot;
  snapshot.applied_seq = applied_seq;
  snapshot.entries = entries;
  if (!write_shard_snapshot(shard, snapshot)) return false;
  log.seq = applied_seq;
  log.snapshot_seq = applied_seq;
  return drop_segments(log, shard);
}

std::optional<TailRead> LogStore::read_tail(std::size_t shard,
                                            std::uint64_t from_seq,
                                            std::size_t max_records) const {
  if (shard >= config_.shards || from_seq == 0) return std::nullopt;
  ShardLog& log = logs_[shard];
  std::lock_guard lock(log.mutex);
  if (from_seq <= log.snapshot_seq || from_seq > log.seq + 1) return std::nullopt;
  TailRead out;
  out.first_seq = from_seq;
  if (from_seq == log.seq + 1) {
    out.caught_up = true;
    return out;
  }
  std::vector<std::uint64_t> bases = log.sealed_bases;
  bases.push_back(log.active_base);
  std::uint64_t next = from_seq;
  for (std::size_t i = 0; i < bases.size() && out.records.size() < max_records; ++i) {
    // Records of segment i span [base, next_base) — or up to the shard
    // sequence for the active segment.
    const std::uint64_t base = bases[i];
    const std::uint64_t end = (i + 1 < bases.size()) ? bases[i + 1] - 1 : log.seq;
    if (next > end || base > next) {
      if (base > next) return std::nullopt;  // gap: range not on disk
      continue;
    }
    const auto bytes = read_whole_file(segment_path(shard, base));
    if (!bytes) return std::nullopt;
    const auto header_frame = read_frame(*bytes);
    if (!header_frame) return std::nullopt;
    std::span<const std::uint8_t> rest =
        std::span<const std::uint8_t>(*bytes).subspan(header_frame->consumed);
    std::uint64_t seq = base - 1;
    while (!rest.empty() && out.records.size() < max_records) {
      const auto frame = read_frame(rest);
      const auto record = frame ? decode_wal_record(frame->payload) : std::nullopt;
      if (!record) return std::nullopt;  // sealed segments never tear
      ++seq;
      if (seq >= next) {
        out.records.push_back(std::move(*record));
        next = seq + 1;
      }
      rest = rest.subspan(frame->consumed);
    }
  }
  out.caught_up = next == log.seq + 1;
  return out;
}

std::optional<SnapshotChunk> LogStore::read_snapshot_chunk(
    std::size_t shard, std::uint64_t offset, std::size_t max_entries) const {
  if (shard >= config_.shards) return std::nullopt;
  ShardLog& log = logs_[shard];
  std::lock_guard lock(log.mutex);
  SnapshotChunk chunk;
  const auto bytes = read_whole_file(snapshot_path(shard));
  if (!bytes || bytes->empty()) return chunk;  // never compacted: empty chunk
  const auto snapshot = decode_snapshot(*bytes);
  if (!snapshot) return std::nullopt;
  chunk.applied_seq = snapshot->applied_seq;
  chunk.total = snapshot->entries.size();
  for (std::uint64_t i = offset;
       i < snapshot->entries.size() && chunk.entries.size() < max_entries; ++i) {
    chunk.entries.push_back(snapshot->entries[static_cast<std::size_t>(i)]);
  }
  return chunk;
}

std::uint64_t LogStore::shard_sequence(std::size_t shard) const {
  if (shard >= config_.shards) return 0;
  std::lock_guard lock(logs_[shard].mutex);
  return logs_[shard].seq;
}

std::uint64_t LogStore::total_sequence() const {
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < config_.shards; ++s) total += shard_sequence(s);
  return total;
}

std::uint64_t LogStore::oldest_on_disk(std::size_t shard) const {
  if (shard >= config_.shards) return 0;
  std::lock_guard lock(logs_[shard].mutex);
  return logs_[shard].snapshot_seq + 1;
}

std::size_t LogStore::segment_count(std::size_t shard) const {
  if (shard >= config_.shards) return 0;
  std::lock_guard lock(logs_[shard].mutex);
  return logs_[shard].sealed_bases.size() + (logs_[shard].fd >= 0 ? 1 : 0);
}

}  // namespace mccls::kgc
