#include "kgc/store.hpp"

#include <array>

namespace mccls::kgc {

using crypto::Bytes;

// ---- CRC-32 --------------------------------------------------------------

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const std::uint8_t b : data) crc = table[(crc ^ b) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

// ---- record codecs -------------------------------------------------------

crypto::Bytes encode_wal_record(const WalRecord& record) {
  crypto::ByteWriter w;
  w.put_u8(kStoreVersion);
  w.put_u8(static_cast<std::uint8_t>(record.type));
  w.put_u64(record.epoch);
  w.put_field(record.id);
  w.put_field(record.pk_bytes);
  if (record.type == WalRecordType::kVoucher) w.put_u64(record.serial);
  return w.take();
}

std::optional<WalRecord> decode_wal_record(std::span<const std::uint8_t> bytes) {
  crypto::ByteReader r(bytes);
  const auto version = r.get_u8();
  if (!version || *version != kStoreVersion) return std::nullopt;
  const auto type = r.get_u8();
  const auto epoch = r.get_u64();
  if (!type || !epoch) return std::nullopt;
  if (*type != static_cast<std::uint8_t>(WalRecordType::kEnroll) &&
      *type != static_cast<std::uint8_t>(WalRecordType::kRevoke) &&
      *type != static_cast<std::uint8_t>(WalRecordType::kVoucher)) {
    return std::nullopt;
  }
  const auto id = r.get_field(kMaxStoreIdLen);
  const auto pk = r.get_field(kMaxStorePkLen);
  if (!id || !pk) return std::nullopt;
  if (id->empty()) return std::nullopt;  // an identity is never empty
  // Shape invariant: enrolls carry a key; revokes and vouchers never do.
  // Enforcing it in the decoder keeps decode∘encode the identity on every
  // accepted input.
  const bool is_enroll = *type == static_cast<std::uint8_t>(WalRecordType::kEnroll);
  if (is_enroll == pk->empty()) return std::nullopt;
  // Voucher records (and only voucher records) trail their issued serial.
  std::uint64_t serial = 0;
  if (*type == static_cast<std::uint8_t>(WalRecordType::kVoucher)) {
    const auto s = r.get_u64();
    if (!s) return std::nullopt;
    serial = *s;
  }
  if (!r.exhausted()) return std::nullopt;
  return WalRecord{.type = WalRecordType{*type},
                   .epoch = *epoch,
                   .id = std::string(id->begin(), id->end()),
                   .pk_bytes = *pk,
                   .serial = serial};
}

crypto::Bytes encode_snapshot_entry(const SnapshotEntry& entry) {
  crypto::ByteWriter w;
  w.put_u8(kStoreVersion);
  w.put_field(entry.id);
  w.put_field(entry.pk_bytes);
  w.put_u64(entry.enrolled_epoch);
  w.put_u8(entry.revoked ? 1 : 0);
  w.put_u64(entry.revoked_epoch);
  return w.take();
}

std::optional<SnapshotEntry> decode_snapshot_entry(std::span<const std::uint8_t> bytes) {
  crypto::ByteReader r(bytes);
  const auto version = r.get_u8();
  if (!version || *version != kStoreVersion) return std::nullopt;
  const auto id = r.get_field(kMaxStoreIdLen);
  const auto pk = r.get_field(kMaxStorePkLen);
  const auto enrolled = r.get_u64();
  const auto revoked = r.get_u8();
  const auto revoked_epoch = r.get_u64();
  if (!id || !pk || !enrolled || !revoked || !revoked_epoch || !r.exhausted()) {
    return std::nullopt;
  }
  if (id->empty() || pk->empty() || *revoked > 1) return std::nullopt;
  // A never-revoked entry carries a zero revoked_epoch — canonical form.
  if (*revoked == 0 && *revoked_epoch != 0) return std::nullopt;
  return SnapshotEntry{.id = std::string(id->begin(), id->end()),
                       .pk_bytes = *pk,
                       .enrolled_epoch = *enrolled,
                       .revoked = *revoked == 1,
                       .revoked_epoch = *revoked_epoch};
}

// ---- CRC framing ---------------------------------------------------------

crypto::Bytes frame_payload(std::span<const std::uint8_t> payload) {
  crypto::ByteWriter w;
  w.put_u32(static_cast<std::uint32_t>(payload.size()));
  w.put_u32(crc32(payload));
  w.put_raw(payload);
  return w.take();
}

std::optional<Frame> read_frame(std::span<const std::uint8_t> bytes) {
  crypto::ByteReader r(bytes);
  const auto len = r.get_u32();
  const auto crc = r.get_u32();
  if (!len || !crc || *len > kMaxFramePayload) return std::nullopt;
  auto payload = r.get_raw(*len);
  if (!payload || crc32(*payload) != *crc) return std::nullopt;
  return Frame{.payload = std::move(*payload), .consumed = 8 + *len};
}

// ---- snapshot file -------------------------------------------------------

namespace {

constexpr std::uint8_t kSnapshotMagic0 = 'K';
constexpr std::uint8_t kSnapshotMagic1 = 'S';

Bytes encode_snapshot_header(const Snapshot& snapshot) {
  crypto::ByteWriter w;
  w.put_u8(kSnapshotMagic0);
  w.put_u8(kSnapshotMagic1);
  w.put_u8(kStoreVersion);
  w.put_u64(snapshot.applied_seq);
  w.put_u64(snapshot.entries.size());
  return w.take();
}

}  // namespace

crypto::Bytes encode_snapshot(const Snapshot& snapshot) {
  crypto::ByteWriter w;
  w.put_raw(frame_payload(encode_snapshot_header(snapshot)));
  for (const SnapshotEntry& entry : snapshot.entries) {
    w.put_raw(frame_payload(encode_snapshot_entry(entry)));
  }
  return w.take();
}

std::optional<Snapshot> decode_snapshot(std::span<const std::uint8_t> bytes) {
  const auto header_frame = read_frame(bytes);
  if (!header_frame) return std::nullopt;
  crypto::ByteReader h(header_frame->payload);
  const auto m0 = h.get_u8();
  const auto m1 = h.get_u8();
  const auto version = h.get_u8();
  const auto seq = h.get_u64();
  const auto count = h.get_u64();
  if (!m0 || *m0 != kSnapshotMagic0 || !m1 || *m1 != kSnapshotMagic1 || !version ||
      *version != kStoreVersion || !seq || !count || !h.exhausted()) {
    return std::nullopt;
  }
  // Each entry frame costs at least 8 header bytes, so the declared count is
  // bounded by the remaining input — rejects absurd counts before looping.
  std::span<const std::uint8_t> rest = bytes.subspan(header_frame->consumed);
  if (*count > rest.size() / 8) return std::nullopt;
  Snapshot snapshot;
  snapshot.applied_seq = *seq;
  snapshot.entries.reserve(static_cast<std::size_t>(*count));
  for (std::uint64_t i = 0; i < *count; ++i) {
    const auto frame = read_frame(rest);
    if (!frame) return std::nullopt;
    auto entry = decode_snapshot_entry(frame->payload);
    if (!entry) return std::nullopt;
    snapshot.entries.push_back(std::move(*entry));
    rest = rest.subspan(frame->consumed);
  }
  if (!rest.empty()) return std::nullopt;  // trailing garbage
  return snapshot;
}

}  // namespace mccls::kgc
