// The identity→public-key directory behind kgcd: a mutex-striped sharded
// index (same idiom as svc::ShardedPairingCache) whose authoritative state
// is the *serialized* public key, fronted by a per-shard LRU cache of
// decoded cls::PublicKey values.
//
// Why cache decoded keys: the compressed G1 encoding stores x plus a parity
// bit, so every decode pays a square root in Fp (~an exponentiation). The
// verify-by-identity hot path resolves the same signers over and over; the
// LRU turns the steady state into a hash lookup + 33-byte copy while the
// authoritative map stays compact (bytes, not points).
//
// Validation is the directory's whole point (see Pakniat's analysis of
// sloppy CLS public-key handling, PAPERS.md): enroll() rejects any key whose
// points are not on-curve, not in the order-q subgroup, or infinity — the
// exact class of inputs that let 2-torsion translations slip past AP
// verification before PR 3 hardened it. A key that enters the directory is
// one the verifier can trust structurally.
//
// Revocation is epoch-scoped the Al-Riyami–Paterson way (cls/epoch.hpp):
// revoking an identity stops issuance immediately and resolution permanently;
// scoped identities "ID@epoch-N" resolve only while N is acceptable against
// the directory's current epoch.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "cls/epoch.hpp"
#include "cls/keys.hpp"
#include "kgc/store.hpp"
#include "svc/metrics.hpp"
#include "svc/resolver.hpp"

namespace mccls::kgc {

/// Outcome of a directory mutation or lookup.
enum class DirStatus : std::uint8_t {
  kOk = 0,
  kUnknownId = 1,   ///< no entry for this identity
  kRevoked = 2,     ///< identity was revoked (or epoch outside the window)
  kInvalidKey = 3,  ///< submitted key failed structural validation
  kConflict = 4,    ///< identity already enrolled with a *different* key
};

struct DirectoryConfig {
  std::size_t shards = 16;
  std::size_t lru_per_shard = 64;  ///< decoded-key cache entries per shard
  cls::Epoch epoch = 0;            ///< current issuance epoch
  cls::Epoch grace = 1;            ///< trailing epochs accepted on resolve
};

class KeyDirectory final : public svc::PkResolver {
 public:
  explicit KeyDirectory(DirectoryConfig config = {});

  /// Structural validation: 1 or 2 points, each on-curve, in the order-q
  /// subgroup, and not infinity. Exposed so callers (and tests) can probe a
  /// key without mutating the directory.
  static bool validate_key(const cls::PublicKey& pk);

  /// Admits (id → pk) at epoch `epoch`. kOk on first enrollment and on
  /// re-issuance with the byte-identical key (refresh at a later epoch);
  /// kConflict when the identity already holds a different key; kRevoked
  /// once revoked (revocation is permanent); kInvalidKey on validation
  /// failure. `pk_bytes` must be the canonical serialization.
  DirStatus enroll(std::string_view id, std::span<const std::uint8_t> pk_bytes,
                   cls::Epoch epoch);

  /// Marks `id` revoked as of `epoch`. Idempotent; kUnknownId when absent.
  DirStatus revoke(std::string_view id, cls::Epoch epoch);

  /// Authoritative lookup (no LRU, no epoch policy): the stored bytes and
  /// revocation state, or kUnknownId/kRevoked.
  struct LookupResult {
    DirStatus status = DirStatus::kUnknownId;
    crypto::Bytes pk_bytes;
    cls::Epoch enrolled_epoch = 0;
  };
  [[nodiscard]] LookupResult lookup(std::string_view id) const;

  /// svc::PkResolver: decoded-key resolution through the LRU. Accepts plain
  /// identities and scoped "ID@epoch-N" identities; scoped ones additionally
  /// require epoch_acceptable(N, current epoch, grace). Unknown, revoked and
  /// epoch-rejected signers answer kNotVouched — a definitive trust verdict.
  /// The in-process directory is always reachable, so it never answers
  /// kUnavailable/kTimeout itself; those outcomes come from the transport or
  /// fault wrappers (svc::FaultInjectingResolver, svc::ResilientResolver)
  /// layered above it.
  svc::ResolveResult resolve(std::string_view id) override;

  /// Replay hooks for WalStore::recover — identical admission rules to
  /// enroll/revoke, minus re-validation of keys the directory already
  /// validated before logging them (replayed bytes decode or the record is
  /// ignored; CRC framing already vouches for integrity).
  void apply(const WalRecord& record);
  void apply(const SnapshotEntry& entry);

  /// Dumps every entry (sorted by id) for snapshotting.
  [[nodiscard]] std::vector<SnapshotEntry> export_entries() const;

  /// Dumps one shard's entries (sorted by id) for per-shard compaction —
  /// shard numbering matches kgc::shard_index (logstore.hpp), which is also
  /// this directory's routing, so shard S of the directory is exactly what
  /// shard S of the log replays.
  [[nodiscard]] std::vector<SnapshotEntry> export_shard(std::size_t shard) const;

  [[nodiscard]] std::size_t shards() const { return config_.shards; }

  /// Drops the decoded-key caches (benchmarks: the lookup_cold series).
  void drop_caches();

  [[nodiscard]] std::size_t size() const;  ///< entries, revoked included
  [[nodiscard]] cls::Epoch epoch() const;
  void set_epoch(cls::Epoch epoch);

  void set_metrics(svc::ServiceMetrics* metrics) { metrics_ = metrics; }

 private:
  struct Entry {
    crypto::Bytes pk_bytes;
    cls::Epoch enrolled_epoch = 0;
    bool revoked = false;
    cls::Epoch revoked_epoch = 0;
  };

  /// One stripe: authoritative entries + LRU of decoded keys (list front =
  /// most recent; map values point into the list).
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::string, Entry> entries;
    std::list<std::pair<std::string, cls::PublicKey>> lru;
    std::unordered_map<std::string_view,
                       std::list<std::pair<std::string, cls::PublicKey>>::iterator>
        lru_index;
  };

  Shard& shard_for(std::string_view id) const;
  void cache_insert(Shard& shard, std::string_view id, const cls::PublicKey& pk);
  static void cache_erase(Shard& shard, std::string_view id);

  DirectoryConfig config_;
  std::unique_ptr<Shard[]> shards_;
  mutable std::mutex epoch_mutex_;
  cls::Epoch epoch_;
  svc::ServiceMetrics* metrics_ = nullptr;
};

}  // namespace mccls::kgc
