// kgcd — the persistent Key Generation Center daemon.
//
// Owns the master key (loaded via cls::keyfile's scalar codec), the
// identity→key directory, and the segmented per-shard store (kgc/logstore).
// One instance is safe for concurrent use from many threads: mutations
// decide admission under a directory shard lock, then serialize durability
// on their shard log's append mutex (decide-then-log). The acknowledgement
// contract follows from that order:
//
//   * an acknowledged (kOk) enroll/revoke is durable — append() returned,
//     the record is on disk (fsynced when configured);
//   * visibility can precede durability by the width of the append, so a
//     hard kill loses at most mutations whose responses were never sent;
//   * compaction holds ONE shard's append path closed while it dumps that
//     shard: mutators hold their shard's commit lock shared across their
//     decide-then-log pair, compact_shard(s) holds shard s's lock exclusive
//     across export + snapshot write + segment deletion, so every
//     acknowledged record is either in the shard snapshot or still in the
//     shard's segments — never between them — and applied_seq exactly
//     matches the exported state. The other 15 shards keep enrolling the
//     whole time: there is no global pause anywhere in the daemon.
//
// Replication: the daemon is the primary of a replica set — it serves the
// kReplicate wire op (kgc/replica.hpp) so followers can bootstrap from a
// shard snapshot plus WAL tail and then tail live records. A background
// compaction thread (compact_interval_ms) walks dirty shards one at a time.
//
// Issuance is epoch-scoped (cls/epoch.hpp): a partial private key is
// extracted for the *scoped* identity "ID@epoch-N" at the daemon's current
// epoch, so revocation is simply "stop issuing at the next epoch" — there is
// no certificate to invalidate, exactly as Al-Riyami–Paterson prescribe.
// Revocation also stops directory resolution immediately, which is what the
// verify-by-identity path consults.
#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>
#include <string>
#include <string_view>
#include <thread>

#include <functional>

#include "cls/keys.hpp"
#include "kgc/directory.hpp"
#include "kgc/logstore.hpp"
#include "kgc/voucher.hpp"
#include "kgc/wire.hpp"
#include "svc/metrics.hpp"

namespace mccls::kgc {

struct KgcdConfig {
  std::string data_dir;            ///< store root (shard-N/ subdirectories)
  std::size_t shards = 16;
  std::size_t lru_per_shard = 64;
  cls::Epoch epoch = 0;            ///< initial issuance epoch
  cls::Epoch grace = 1;            ///< resolve-side trailing-epoch window
  bool fsync = true;
  /// Auto-compact (every shard, one at a time) after this many mutations
  /// (0 = manual/background only).
  std::uint64_t snapshot_every = 0;
  /// Seal + rotate a shard's active WAL segment past this size.
  std::size_t segment_bytes = 1 << 20;
  /// Background compaction cadence: every interval, compact each shard that
  /// grew since its last compaction, one shard lock at a time (0 = off).
  std::uint64_t compact_interval_ms = 0;
  /// Trust-anchor name this daemon issues vouchers under. Federated
  /// deployments give every domain KGC a distinct name; verifiers map the
  /// name to the vouching key via kgc::TrustAnchors.
  std::string issuer = "kgc";
  /// Voucher validity window in seconds. Revocation latency for an
  /// offline verifier is bounded by min(this, epoch-bump propagation).
  std::uint64_t voucher_ttl = 3600;
  /// Wall clock in seconds; injectable so tests pin voucher windows.
  std::function<std::uint64_t()> now;
};

class Kgcd {
 public:
  /// Boots the daemon: reconstructs the directory from snapshot + WAL replay
  /// (truncating any torn tail), then opens the log for appending.
  Kgcd(const math::Fq& master_key, KgcdConfig config);
  ~Kgcd();

  Kgcd(const Kgcd&) = delete;
  Kgcd& operator=(const Kgcd&) = delete;

  // ---- typed API ---------------------------------------------------------

  struct EnrollOutcome {
    KgcStatus status = KgcStatus::kStoreError;
    ec::G1 partial_key;        ///< D = s·H1("id@epoch-N"); valid when kOk
    cls::Epoch epoch = 0;      ///< the N the key was issued for
    std::string scoped_id;     ///< the identity the signer must sign under
    VoucherChain voucher;      ///< signed binding for the new enrollment
  };
  /// Validates `pk_bytes` (on-curve + subgroup), admits the identity, logs
  /// the enrollment, and issues the epoch-scoped partial private key plus a
  /// voucher over the fresh binding (offline verifiers can start caching
  /// immediately — no separate vouch round trip needed after enroll).
  EnrollOutcome enroll(std::string_view id, std::span<const std::uint8_t> pk_bytes);

  struct LookupOutcome {
    KgcStatus status = KgcStatus::kUnknownId;
    crypto::Bytes pk_bytes;
    cls::Epoch enrolled_epoch = 0;
  };
  [[nodiscard]] LookupOutcome lookup(std::string_view id) const;

  /// Revokes immediately (resolution stops now; issuance already refuses).
  KgcStatus revoke(std::string_view id);

  struct VouchOutcome {
    KgcStatus status = KgcStatus::kUnknownId;
    VoucherChain chain;        ///< depth-1 chain over the binding; kOk only
  };
  /// Issues a signed voucher chain for an enrolled identity. Accepts the
  /// base identity or its scoped form; a scoped request whose epoch is not
  /// the entry's enrolled epoch answers kRevoked (the daemon only vouches
  /// for bindings it currently stands behind). Each issuance logs a
  /// kVoucher WAL record so serials stay unique across restarts.
  VouchOutcome vouch(std::string_view id);

  /// Compacts every shard in turn (each under its own commit lock only —
  /// mutations on other shards proceed throughout); nullopt if any shard
  /// failed, else the total number of entries written.
  std::optional<std::size_t> snapshot();

  /// Compacts one shard: exports its directory entries and folds its WAL
  /// segments into the shard snapshot, excluding only that shard's mutators.
  /// nullopt on I/O failure, else the entries written.
  std::optional<std::size_t> compact_shard(std::size_t shard);

  // ---- wire entry point --------------------------------------------------

  /// Total: decodes the frame, executes the op, returns the encoded
  /// response. Undecodable frames get a kMalformed response with
  /// request_id 0 (the frame cannot be trusted to contain one).
  crypto::Bytes handle_frame(std::span<const std::uint8_t> frame);

  // ---- plumbing ----------------------------------------------------------

  [[nodiscard]] const cls::SystemParams& params() const { return kgc_.params(); }
  [[nodiscard]] KeyDirectory& directory() { return directory_; }
  /// The segmented store (tests, the kReplicate handler, crash injection).
  [[nodiscard]] LogStore& store() { return store_; }
  [[nodiscard]] const LogStore& store() const { return store_; }
  [[nodiscard]] const svc::ServiceMetrics& metrics() const { return metrics_; }
  [[nodiscard]] svc::ServiceMetrics& metrics() { return metrics_; }
  [[nodiscard]] const RecoveryReport& recovery() const { return recovery_; }
  [[nodiscard]] cls::Epoch epoch() const { return directory_.epoch(); }
  /// Epoch rollover: issuance and the resolve window move to `epoch`.
  void set_epoch(cls::Epoch epoch) { directory_.set_epoch(epoch); }
  /// The voucher signer (name + vouching key). Exposed so deployments can
  /// register this daemon in a TrustAnchors set and so a root issuer can
  /// cross-vouch for it (VoucherIssuer::vouch_for_issuer).
  [[nodiscard]] const VoucherIssuer& voucher_issuer() const { return voucher_issuer_; }
  /// Highest voucher serial issued so far (monotonic across restarts).
  [[nodiscard]] std::uint64_t voucher_serial() const {
    return voucher_serial_.load(std::memory_order_relaxed);
  }

 private:
  void maybe_auto_snapshot();
  void compaction_loop(std::stop_token token);
  [[nodiscard]] std::uint64_t now() const;
  /// Builds + logs one voucher for an already-admitted binding. Called under
  /// `shard`'s shared commit lock; the record logs into that same shard so
  /// the lock actually covers the append. Empty chain on WAL append failure.
  VoucherChain issue_voucher(std::string_view scoped_id,
                             std::span<const std::uint8_t> pk_bytes, cls::Epoch epoch,
                             std::size_t shard);

  KgcdConfig config_;
  cls::Kgc kgc_;
  VoucherIssuer voucher_issuer_;
  svc::ServiceMetrics metrics_;
  KeyDirectory directory_;
  LogStore store_;
  RecoveryReport recovery_;
  std::atomic<std::uint64_t> voucher_serial_{0};
  /// One commit lock per shard. Shared: a mutator's directory-mutation +
  /// WAL-append pair on that shard. Exclusive: compact_shard's export +
  /// snapshot write + segment deletion, so no acknowledged record can land
  /// between the exported state and the folded log — while every other
  /// shard's mutators run unimpeded.
  std::unique_ptr<std::shared_mutex[]> commit_locks_;
  std::atomic<std::uint64_t> appends_since_snapshot_{0};
  /// Background compaction: per-shard sequence at its last compaction (only
  /// the compaction thread reads/writes these).
  std::vector<std::uint64_t> compacted_seq_;
  std::mutex compactor_mutex_;
  std::condition_variable_any compactor_cv_;
  std::jthread compactor_;  ///< last member: joins before anything tears down
};

}  // namespace mccls::kgc
