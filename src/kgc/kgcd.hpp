// kgcd — the persistent Key Generation Center daemon.
//
// Owns the master key (loaded via cls::keyfile's scalar codec), the
// identity→key directory, and the WAL+snapshot store. One instance is safe
// for concurrent use from many threads: mutations decide admission under a
// directory shard lock, then serialize durability on the store's append
// mutex (decide-then-log). The acknowledgement contract follows from that
// order:
//
//   * an acknowledged (kOk) enroll/revoke is durable — append() returned,
//     the record is on disk (fsynced when configured);
//   * visibility can precede durability by the width of the append, so a
//     hard kill loses at most mutations whose responses were never sent;
//   * snapshot() holds the append path closed while it dumps the directory:
//     mutators hold a commit lock shared across their decide-then-log pair,
//     snapshot() holds it exclusive across sequence capture + export + the
//     snapshot write, so every acknowledged record is either in the snapshot
//     or still in the WAL when the WAL is truncated — never between them —
//     and applied_seq exactly matches the exported state.
//
// Issuance is epoch-scoped (cls/epoch.hpp): a partial private key is
// extracted for the *scoped* identity "ID@epoch-N" at the daemon's current
// epoch, so revocation is simply "stop issuing at the next epoch" — there is
// no certificate to invalidate, exactly as Al-Riyami–Paterson prescribe.
// Revocation also stops directory resolution immediately, which is what the
// verify-by-identity path consults.
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <span>
#include <string>
#include <string_view>

#include <functional>

#include "cls/keys.hpp"
#include "kgc/directory.hpp"
#include "kgc/store.hpp"
#include "kgc/voucher.hpp"
#include "kgc/wire.hpp"
#include "svc/metrics.hpp"

namespace mccls::kgc {

struct KgcdConfig {
  std::string data_dir;            ///< store directory (wal.log, snapshot.bin)
  std::size_t shards = 16;
  std::size_t lru_per_shard = 64;
  cls::Epoch epoch = 0;            ///< initial issuance epoch
  cls::Epoch grace = 1;            ///< resolve-side trailing-epoch window
  bool fsync = true;
  /// Auto-snapshot after this many WAL appends (0 = manual only).
  std::uint64_t snapshot_every = 0;
  /// Trust-anchor name this daemon issues vouchers under. Federated
  /// deployments give every domain KGC a distinct name; verifiers map the
  /// name to the vouching key via kgc::TrustAnchors.
  std::string issuer = "kgc";
  /// Voucher validity window in seconds. Revocation latency for an
  /// offline verifier is bounded by min(this, epoch-bump propagation).
  std::uint64_t voucher_ttl = 3600;
  /// Wall clock in seconds; injectable so tests pin voucher windows.
  std::function<std::uint64_t()> now;
};

class Kgcd {
 public:
  /// Boots the daemon: reconstructs the directory from snapshot + WAL replay
  /// (truncating any torn tail), then opens the log for appending.
  Kgcd(const math::Fq& master_key, KgcdConfig config);

  Kgcd(const Kgcd&) = delete;
  Kgcd& operator=(const Kgcd&) = delete;

  // ---- typed API ---------------------------------------------------------

  struct EnrollOutcome {
    KgcStatus status = KgcStatus::kStoreError;
    ec::G1 partial_key;        ///< D = s·H1("id@epoch-N"); valid when kOk
    cls::Epoch epoch = 0;      ///< the N the key was issued for
    std::string scoped_id;     ///< the identity the signer must sign under
    VoucherChain voucher;      ///< signed binding for the new enrollment
  };
  /// Validates `pk_bytes` (on-curve + subgroup), admits the identity, logs
  /// the enrollment, and issues the epoch-scoped partial private key plus a
  /// voucher over the fresh binding (offline verifiers can start caching
  /// immediately — no separate vouch round trip needed after enroll).
  EnrollOutcome enroll(std::string_view id, std::span<const std::uint8_t> pk_bytes);

  struct LookupOutcome {
    KgcStatus status = KgcStatus::kUnknownId;
    crypto::Bytes pk_bytes;
    cls::Epoch enrolled_epoch = 0;
  };
  [[nodiscard]] LookupOutcome lookup(std::string_view id) const;

  /// Revokes immediately (resolution stops now; issuance already refuses).
  KgcStatus revoke(std::string_view id);

  struct VouchOutcome {
    KgcStatus status = KgcStatus::kUnknownId;
    VoucherChain chain;        ///< depth-1 chain over the binding; kOk only
  };
  /// Issues a signed voucher chain for an enrolled identity. Accepts the
  /// base identity or its scoped form; a scoped request whose epoch is not
  /// the entry's enrolled epoch answers kRevoked (the daemon only vouches
  /// for bindings it currently stands behind). Each issuance logs a
  /// kVoucher WAL record so serials stay unique across restarts.
  VouchOutcome vouch(std::string_view id);

  /// Persists a snapshot and truncates the WAL; nullopt on I/O failure,
  /// else the number of entries written.
  std::optional<std::size_t> snapshot();

  // ---- wire entry point --------------------------------------------------

  /// Total: decodes the frame, executes the op, returns the encoded
  /// response. Undecodable frames get a kMalformed response with
  /// request_id 0 (the frame cannot be trusted to contain one).
  crypto::Bytes handle_frame(std::span<const std::uint8_t> frame);

  // ---- plumbing ----------------------------------------------------------

  [[nodiscard]] const cls::SystemParams& params() const { return kgc_.params(); }
  [[nodiscard]] KeyDirectory& directory() { return directory_; }
  [[nodiscard]] const svc::ServiceMetrics& metrics() const { return metrics_; }
  [[nodiscard]] svc::ServiceMetrics& metrics() { return metrics_; }
  [[nodiscard]] const RecoveryReport& recovery() const { return recovery_; }
  [[nodiscard]] cls::Epoch epoch() const { return directory_.epoch(); }
  /// Epoch rollover: issuance and the resolve window move to `epoch`.
  void set_epoch(cls::Epoch epoch) { directory_.set_epoch(epoch); }
  /// The voucher signer (name + vouching key). Exposed so deployments can
  /// register this daemon in a TrustAnchors set and so a root issuer can
  /// cross-vouch for it (VoucherIssuer::vouch_for_issuer).
  [[nodiscard]] const VoucherIssuer& voucher_issuer() const { return voucher_issuer_; }
  /// Highest voucher serial issued so far (monotonic across restarts).
  [[nodiscard]] std::uint64_t voucher_serial() const {
    return voucher_serial_.load(std::memory_order_relaxed);
  }

 private:
  void maybe_auto_snapshot();
  [[nodiscard]] std::uint64_t now() const;
  /// Builds + logs one voucher for an already-admitted binding. Called under
  /// the shared commit lock. Empty chain on WAL append failure.
  VoucherChain issue_voucher(std::string_view scoped_id,
                             std::span<const std::uint8_t> pk_bytes, cls::Epoch epoch);

  KgcdConfig config_;
  cls::Kgc kgc_;
  VoucherIssuer voucher_issuer_;
  svc::ServiceMetrics metrics_;
  KeyDirectory directory_;
  WalStore store_;
  RecoveryReport recovery_;
  std::atomic<std::uint64_t> voucher_serial_{0};
  /// Shared: a mutator's directory-mutation + WAL-append pair. Exclusive:
  /// snapshot()'s sequence + export + write, so no acknowledged record can
  /// land between the exported state and the WAL truncation.
  mutable std::shared_mutex commit_mutex_;
  std::atomic<std::uint64_t> appends_since_snapshot_{0};
};

}  // namespace mccls::kgc
