#include "kgc/directory.hpp"

#include <algorithm>
#include <functional>

#include "kgc/logstore.hpp"

namespace mccls::kgc {

KeyDirectory::KeyDirectory(DirectoryConfig config)
    : config_(config), epoch_(config.epoch) {
  if (config_.shards == 0) config_.shards = 1;
  if (config_.lru_per_shard == 0) config_.lru_per_shard = 1;
  shards_ = std::make_unique<Shard[]>(config_.shards);
}

bool KeyDirectory::validate_key(const cls::PublicKey& pk) { return pk.well_formed(); }

KeyDirectory::Shard& KeyDirectory::shard_for(std::string_view id) const {
  // Shared routing with the shard log (logstore.hpp): the directory shard an
  // id lives in is the log shard its mutations are framed into.
  return shards_[shard_index(id, config_.shards)];
}

void KeyDirectory::cache_insert(Shard& shard, std::string_view id,
                                const cls::PublicKey& pk) {
  if (const auto it = shard.lru_index.find(id); it != shard.lru_index.end()) {
    it->second->second = pk;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.emplace_front(std::string(id), pk);
  shard.lru_index.emplace(shard.lru.front().first, shard.lru.begin());
  if (shard.lru.size() > config_.lru_per_shard) {
    shard.lru_index.erase(shard.lru.back().first);
    shard.lru.pop_back();
  }
}

void KeyDirectory::cache_erase(Shard& shard, std::string_view id) {
  if (const auto it = shard.lru_index.find(id); it != shard.lru_index.end()) {
    shard.lru.erase(it->second);
    shard.lru_index.erase(it);
  }
}

DirStatus KeyDirectory::enroll(std::string_view id, std::span<const std::uint8_t> pk_bytes,
                               cls::Epoch epoch) {
  const auto pk = cls::PublicKey::from_bytes(pk_bytes);
  if (!pk || !validate_key(*pk)) return DirStatus::kInvalidKey;

  Shard& shard = shard_for(id);
  std::lock_guard lock(shard.mutex);
  const auto [it, inserted] = shard.entries.try_emplace(
      std::string(id), Entry{.pk_bytes = crypto::Bytes(pk_bytes.begin(), pk_bytes.end()),
                             .enrolled_epoch = epoch});
  if (!inserted) {
    if (it->second.revoked) return DirStatus::kRevoked;
    if (it->second.pk_bytes != crypto::Bytes(pk_bytes.begin(), pk_bytes.end())) {
      return DirStatus::kConflict;
    }
    it->second.enrolled_epoch = epoch;  // re-issuance at a later epoch
  }
  // Enrollment warms the decoded cache: the enrolling signer is about to be
  // looked up by the verifiers it signs for.
  cache_insert(shard, id, *pk);
  return DirStatus::kOk;
}

DirStatus KeyDirectory::revoke(std::string_view id, cls::Epoch epoch) {
  Shard& shard = shard_for(id);
  std::lock_guard lock(shard.mutex);
  const auto it = shard.entries.find(std::string(id));
  if (it == shard.entries.end()) return DirStatus::kUnknownId;
  if (!it->second.revoked) {
    it->second.revoked = true;
    it->second.revoked_epoch = epoch;
  }
  cache_erase(shard, id);  // a revoked signer must stop resolving immediately
  return DirStatus::kOk;
}

KeyDirectory::LookupResult KeyDirectory::lookup(std::string_view id) const {
  Shard& shard = shard_for(id);
  std::lock_guard lock(shard.mutex);
  const auto it = shard.entries.find(std::string(id));
  if (it == shard.entries.end()) return LookupResult{};
  if (it->second.revoked) return LookupResult{.status = DirStatus::kRevoked};
  return LookupResult{.status = DirStatus::kOk,
                      .pk_bytes = it->second.pk_bytes,
                      .enrolled_epoch = it->second.enrolled_epoch};
}

svc::ResolveResult KeyDirectory::resolve(std::string_view id) {
  // Every path out of the in-process directory is a *definitive* verdict —
  // the key, or kNotVouched. Availability failures (kUnavailable/kTimeout)
  // only arise in the wrappers layered above (see resolver.hpp).
  //
  // Scoped identities resolve through their base entry, gated by the
  // verifier-side epoch policy; plain identities skip the policy.
  std::string_view base = id;
  if (const auto scoped = cls::parse_scoped_identity(id)) {
    if (!cls::epoch_acceptable(scoped->second, epoch(), config_.grace)) {
      return svc::ResolveResult::not_vouched();
    }
    base = id.substr(0, scoped->first.size());
  }

  Shard& shard = shard_for(base);
  crypto::Bytes pk_bytes;
  {
    std::lock_guard lock(shard.mutex);
    if (const auto it = shard.lru_index.find(base); it != shard.lru_index.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      if (metrics_ != nullptr) metrics_->on_dir_hit();
      // Copy out under the lock (GtCache idiom).
      return svc::ResolveResult::ok(it->second->second);
    }
    const auto entry = shard.entries.find(std::string(base));
    if (entry == shard.entries.end() || entry->second.revoked) {
      return svc::ResolveResult::not_vouched();
    }
    pk_bytes = entry->second.pk_bytes;
  }

  // Miss: decode outside the shard lock — the compressed-point square root
  // is the expensive part, and holding the stripe through it would serialize
  // every worker resolving a cold signer on this shard.
  if (metrics_ != nullptr) metrics_->on_dir_miss();
  const auto pk = cls::PublicKey::from_bytes(pk_bytes);
  if (!pk) return svc::ResolveResult::not_vouched();  // unreachable for validated entries
  std::lock_guard lock(shard.mutex);
  // Re-check under the lock: a revoke() that landed during the unlocked
  // decode already ran its cache_erase against a not-yet-cached id, so
  // inserting now would re-cache the revoked key until eviction.
  const auto entry = shard.entries.find(std::string(base));
  if (entry == shard.entries.end() || entry->second.revoked) {
    return svc::ResolveResult::not_vouched();
  }
  cache_insert(shard, base, *pk);
  return svc::ResolveResult::ok(*pk);
}

void KeyDirectory::apply(const WalRecord& record) {
  // Voucher records are serial bookkeeping for Kgcd, not directory state —
  // treating one as a revoke here would be a replay-only revocation.
  if (record.type == WalRecordType::kVoucher) return;
  Shard& shard = shard_for(record.id);
  std::lock_guard lock(shard.mutex);
  auto it = shard.entries.find(record.id);
  if (record.type == WalRecordType::kEnroll) {
    if (it == shard.entries.end()) {
      shard.entries.emplace(record.id, Entry{.pk_bytes = record.pk_bytes,
                                             .enrolled_epoch = record.epoch});
    } else if (!it->second.revoked && it->second.pk_bytes == record.pk_bytes) {
      it->second.enrolled_epoch = record.epoch;  // replayed re-issuance
    }
    // A conflicting or post-revocation enroll was never acknowledged with an
    // admission; replay keeps the first-writer state, matching live rules.
  } else {
    if (it != shard.entries.end() && !it->second.revoked) {
      it->second.revoked = true;
      it->second.revoked_epoch = record.epoch;
    }
  }
}

void KeyDirectory::apply(const SnapshotEntry& entry) {
  Shard& shard = shard_for(entry.id);
  std::lock_guard lock(shard.mutex);
  shard.entries.insert_or_assign(entry.id,
                                 Entry{.pk_bytes = entry.pk_bytes,
                                       .enrolled_epoch = entry.enrolled_epoch,
                                       .revoked = entry.revoked,
                                       .revoked_epoch = entry.revoked_epoch});
}

std::vector<SnapshotEntry> KeyDirectory::export_entries() const {
  std::vector<SnapshotEntry> out;
  for (std::size_t s = 0; s < config_.shards; ++s) {
    std::lock_guard lock(shards_[s].mutex);
    for (const auto& [id, entry] : shards_[s].entries) {
      out.push_back(SnapshotEntry{.id = id,
                                  .pk_bytes = entry.pk_bytes,
                                  .enrolled_epoch = entry.enrolled_epoch,
                                  .revoked = entry.revoked,
                                  .revoked_epoch = entry.revoked_epoch});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SnapshotEntry& a, const SnapshotEntry& b) { return a.id < b.id; });
  return out;
}

std::vector<SnapshotEntry> KeyDirectory::export_shard(std::size_t shard) const {
  std::vector<SnapshotEntry> out;
  if (shard >= config_.shards) return out;
  {
    std::lock_guard lock(shards_[shard].mutex);
    out.reserve(shards_[shard].entries.size());
    for (const auto& [id, entry] : shards_[shard].entries) {
      out.push_back(SnapshotEntry{.id = id,
                                  .pk_bytes = entry.pk_bytes,
                                  .enrolled_epoch = entry.enrolled_epoch,
                                  .revoked = entry.revoked,
                                  .revoked_epoch = entry.revoked_epoch});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SnapshotEntry& a, const SnapshotEntry& b) { return a.id < b.id; });
  return out;
}

void KeyDirectory::drop_caches() {
  for (std::size_t s = 0; s < config_.shards; ++s) {
    std::lock_guard lock(shards_[s].mutex);
    shards_[s].lru_index.clear();
    shards_[s].lru.clear();
  }
}

std::size_t KeyDirectory::size() const {
  std::size_t n = 0;
  for (std::size_t s = 0; s < config_.shards; ++s) {
    std::lock_guard lock(shards_[s].mutex);
    n += shards_[s].entries.size();
  }
  return n;
}

cls::Epoch KeyDirectory::epoch() const {
  std::lock_guard lock(epoch_mutex_);
  return epoch_;
}

void KeyDirectory::set_epoch(cls::Epoch epoch) {
  std::lock_guard lock(epoch_mutex_);
  epoch_ = epoch;
}

}  // namespace mccls::kgc
