// Canonical wire framing for kgcd requests and responses — the boundary
// format the mccls_cli kgc subcommands and kgcd_loadgen speak to the KGC
// daemon. Same contract as svc/wire: versioned header, per-field size caps,
// and *total* decoders (malformed, truncated, unknown-version, non-canonical
// and trailing-garbage inputs all yield nullopt, never UB or exceptions).
//
//   request  := version:u8=1  kind:u8=1  op:u8  request_id:u64
//               field(identity)  field(public_key)
//               [shard:u32  from_seq:u64  cursor:u64]   (kReplicate only)
//   response := version:u8=1  kind:u8=2  op:u8  request_id:u64  status:u8
//               epoch:u64  field(payload)
//
// Op-dependent shape is part of the decoder (canonical form): only enroll
// requests carry a public key; lookup/revoke/vouch carry an identity but no
// key; snapshot carries neither; replicate carries neither plus the trailing
// shard cursor triple (absent on every other op, so pre-replication frames
// keep decoding unchanged). Responses: enroll's payload is the issued
// partial private key (33 bytes), lookup's is the directory's public-key
// bytes, vouch's is an encoded voucher chain (kgc/voucher.hpp, its own
// larger cap), replicate's is an encoded ReplicateBatch (kgc/replica.hpp,
// the largest cap), revoke/snapshot carry none. Any deviation rejects,
// which keeps decode∘encode the identity on every accepted frame (the mcqc
// stability property).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "cls/epoch.hpp"
#include "crypto/encoding.hpp"

namespace mccls::kgc {

inline constexpr std::uint8_t kKgcWireVersion = 1;
inline constexpr std::size_t kMaxKgcIdLen = 1024;
inline constexpr std::size_t kMaxKgcPayloadLen = 256;
/// Payload cap for kVouch responses only: an encoded depth-2 voucher chain
/// is bigger than any key payload but still bounded (see kgc/voucher.hpp).
/// The decoder picks the cap per op, so hostile lengths on the classic ops
/// stay rejected at the old bound.
inline constexpr std::size_t kMaxKgcVoucherLen = 1 << 13;
/// Payload cap for kReplicate responses: one snapshot chunk or record batch
/// (kgc/replica.hpp bounds the item count, this bounds the bytes). Well
/// under netd's kMaxFrameLen so a full batch always fits one frame.
inline constexpr std::size_t kMaxKgcReplicateLen = 1 << 17;

/// Directory operations. kNone is reserved for responses to frames too
/// damaged to echo an op (request decoders reject it).
enum class KgcOp : std::uint8_t {
  kNone = 0,
  kEnroll = 1,    ///< validate + admit (id, pk), issue the partial key
  kLookup = 2,    ///< fetch the directory's public key for id
  kRevoke = 3,    ///< revoke id as of the current epoch
  kSnapshot = 4,  ///< persist a snapshot and truncate the WAL
  kVouch = 5,     ///< fetch a signed voucher chain for id (offline verify)
  kReplicate = 6, ///< stream one shard's snapshot/WAL tail to a follower
};

/// Final outcome of one kgcd request.
enum class KgcStatus : std::uint8_t {
  kOk = 0,
  kUnknownId = 1,   ///< lookup/revoke of an identity never enrolled
  kRevoked = 2,     ///< identity revoked (enroll/lookup refused)
  kInvalidKey = 3,  ///< submitted key failed on-curve/subgroup validation
  kConflict = 4,    ///< identity already enrolled with a different key
  kMalformed = 5,   ///< request frame undecodable
  kStoreError = 6,  ///< WAL append or snapshot write failed
  kReadOnly = 7,    ///< mutation sent to a read replica (retry at primary)
};

struct KgcRequest {
  KgcOp op = KgcOp::kEnroll;
  std::uint64_t request_id = 0;
  std::string id;           ///< empty iff op == kSnapshot or kReplicate
  crypto::Bytes pk_bytes;   ///< canonical PublicKey bytes; enroll only
  // kReplicate only (encoded after the fields above; 0 on every other op):
  std::uint32_t shard = 0;     ///< shard to stream
  std::uint64_t from_seq = 0;  ///< 0 = snapshot bootstrap; else tail from here
  std::uint64_t cursor = 0;    ///< snapshot-entry offset while bootstrapping

  friend bool operator==(const KgcRequest&, const KgcRequest&) = default;
};

struct KgcResponse {
  KgcOp op = KgcOp::kNone;  ///< echoes the request op (kNone for kMalformed)
  std::uint64_t request_id = 0;
  KgcStatus status = KgcStatus::kMalformed;
  cls::Epoch epoch = 0;     ///< issuance epoch (enroll) / enrolled epoch
  crypto::Bytes payload;    ///< partial key (enroll) or pk bytes (lookup)

  friend bool operator==(const KgcResponse&, const KgcResponse&) = default;
};

crypto::Bytes encode_kgc_request(const KgcRequest& request);
std::optional<KgcRequest> decode_kgc_request(std::span<const std::uint8_t> bytes);

crypto::Bytes encode_kgc_response(const KgcResponse& response);
std::optional<KgcResponse> decode_kgc_response(std::span<const std::uint8_t> bytes);

}  // namespace mccls::kgc
