// Segmented, per-shard persistence for kgcd — the million-identity
// replacement for the monolithic WalStore (whose codecs it reuses; see
// store.hpp for the frame/record/snapshot formats).
//
// Layout (one subdirectory per shard under the store root):
//
//   <dir>/shard-<S>/seg-<base_seq>.wal    CRC-framed segment files
//   <dir>/shard-<S>/snapshot.bin          per-shard snapshot (store.hpp codec)
//
// A segment file is a framed header followed by framed WAL records:
//
//   segment          := frame(segment_header)  frame(wal_record)*
//   segment_header   := 'K' 'G'  version:u8=1  shard:u32  base_seq:u64
//
// Record i of a segment has shard-local sequence base_seq + i, so every
// record's position is recoverable from the header alone — no per-record
// sequence bytes on disk. Segments seal (fsync + close) once they pass
// `segment_bytes` and a fresh segment opens at the next sequence; sealed
// segments are immutable, which is what makes both compaction (delete the
// folded prefix) and replication (stream a stable byte range) safe against
// concurrent appends in *other* shards.
//
// Compaction runs one shard at a time: write the shard's entries to
// snapshot.bin (write temp → fsync → rename → fsync dir, same protocol as
// the old WalStore), then delete that shard's segments and open a fresh one.
// The caller must exclude appends to *that shard only* (Kgcd holds the
// per-shard commit lock exclusively); every other shard keeps appending.
// Crash-mid-compaction recovery falls out of the layout: before the rename
// the old snapshot + all segments are intact; after it, any segment whose
// records are all ≤ the snapshot's applied_seq is garbage and recover()
// finishes the interrupted deletion.
//
// Recovery per shard: load snapshot.bin (corrupt → ignored, replay
// everything), then walk segments in base_seq order replaying records with
// seq > applied_seq. A torn or corrupt frame ends the log: the segment is
// truncated to its last good frame and any later segment is deleted (in a
// crash they can only hold records that were never acknowledged).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "kgc/store.hpp"
#include "svc/metrics.hpp"

namespace mccls::kgc {

/// Shard routing shared by the directory and the log: a record for `id`
/// lives in the same shard in memory and on disk, which is what lets
/// compaction export one directory shard against one shard log.
inline std::size_t shard_index(std::string_view id, std::size_t shards) {
  return std::hash<std::string_view>{}(id) % (shards == 0 ? 1 : shards);
}

// ---- segment codec (fuzzed: qa target kgc_segment) -----------------------

inline constexpr std::uint8_t kSegmentMagic0 = 'K';
inline constexpr std::uint8_t kSegmentMagic1 = 'G';
/// Upper bound a decoder accepts for the header's shard id; LogStore clamps
/// its config to this, so any larger value on disk is corruption.
inline constexpr std::uint32_t kMaxLogShards = 1024;

struct SegmentHeader {
  std::uint32_t shard = 0;
  std::uint64_t base_seq = 1;  ///< sequence of the segment's first record

  friend bool operator==(const SegmentHeader&, const SegmentHeader&) = default;
};

crypto::Bytes encode_segment_header(const SegmentHeader& header);
std::optional<SegmentHeader> decode_segment_header(std::span<const std::uint8_t> bytes);

/// A whole segment byte stream as one value — the strict (total) form the
/// fuzz target exercises. The recovery path is deliberately *lenient* about
/// tails (a torn frame is end-of-log, not rejection); this codec is strict
/// so decode∘encode is the identity on every accepted input.
struct SegmentImage {
  SegmentHeader header;
  std::vector<WalRecord> records;

  friend bool operator==(const SegmentImage&, const SegmentImage&) = default;
};

crypto::Bytes encode_segment(const SegmentImage& image);
std::optional<SegmentImage> decode_segment(std::span<const std::uint8_t> bytes);

// ---- the store -----------------------------------------------------------

struct LogStoreConfig {
  std::string dir;                      ///< store root; created if absent
  std::size_t shards = 16;              ///< must match the directory's count
  bool fsync = true;                    ///< fsync per append (durability)
  std::size_t segment_bytes = 1 << 20;  ///< seal the active segment past this
};

/// Phases at which compact_shard() can be interrupted by the crash hook —
/// the three injection points the scale acceptance test kills at.
enum class CompactionPhase : std::uint8_t {
  kBeforeSnapshotRename = 0,  ///< temp snapshot written+fsynced, not yet live
  kAfterSnapshotRename = 1,   ///< snapshot live, every segment still on disk
  kAfterFirstUnlink = 2,      ///< snapshot live, segment deletion half done
};

/// What read_tail() returns: records from `first_seq` on, in order.
struct TailRead {
  std::vector<WalRecord> records;
  std::uint64_t first_seq = 0;
  bool caught_up = false;  ///< the read reached the shard's current sequence
};

/// One page of a shard snapshot, for streaming bootstrap.
struct SnapshotChunk {
  std::uint64_t applied_seq = 0;  ///< the snapshot's fold point
  std::uint64_t total = 0;        ///< entries in the whole snapshot
  std::vector<SnapshotEntry> entries;  ///< entries [offset, offset+max)
};

class LogStore {
 public:
  explicit LogStore(LogStoreConfig config);
  ~LogStore();

  LogStore(const LogStore&) = delete;
  LogStore& operator=(const LogStore&) = delete;

  /// Replays every shard (snapshot entries first, then log records in
  /// sequence order), truncating torn tails and finishing interrupted
  /// compactions. Call once, before concurrent use. The aggregate report
  /// sums over shards.
  RecoveryReport recover(
      const std::function<void(std::size_t shard, const SnapshotEntry&)>& on_entry,
      const std::function<void(std::size_t shard, const WalRecord&)>& on_record);

  /// Appends one record to `shard`'s active segment (sealing + rotating it
  /// first when full) and makes it durable per the fsync policy. Returns the
  /// record's shard-local sequence, or nullopt on I/O failure — same
  /// frame-boundary rollback + poisoning contract as the old WalStore.
  std::optional<std::uint64_t> append(std::size_t shard, const WalRecord& record);

  /// Snapshots `entries` at the shard's current sequence, then deletes the
  /// folded segments and opens a fresh one. The caller must exclude
  /// concurrent append()s to this shard (and `entries` must reflect every
  /// record up to the current sequence). False on I/O failure, in which case
  /// the segments are left untouched.
  bool compact_shard(std::size_t shard, const std::vector<SnapshotEntry>& entries);

  /// Replica-side bootstrap: installs a snapshot received from a primary at
  /// the primary's applied_seq, discarding any local segments (the local
  /// state is a stale prefix of the primary's). The shard's sequence becomes
  /// `applied_seq`.
  bool install_snapshot(std::size_t shard, const std::vector<SnapshotEntry>& entries,
                        std::uint64_t applied_seq);

  /// Reads up to `max_records` records of `shard` starting at sequence
  /// `from_seq`. nullopt when that range is no longer on disk (compacted
  /// away — the caller must fall back to snapshot bootstrap) or lies beyond
  /// the current sequence + 1.
  [[nodiscard]] std::optional<TailRead> read_tail(std::size_t shard,
                                                  std::uint64_t from_seq,
                                                  std::size_t max_records) const;

  /// Reads entries [offset, offset+max_entries) of `shard`'s on-disk
  /// snapshot. A shard that never compacted yields an empty chunk with
  /// applied_seq 0 (bootstrap then starts from sequence 1). nullopt only
  /// when the snapshot exists but fails to decode.
  [[nodiscard]] std::optional<SnapshotChunk> read_snapshot_chunk(
      std::size_t shard, std::uint64_t offset, std::size_t max_entries) const;

  /// Last assigned sequence in `shard` (0 = nothing ever logged).
  [[nodiscard]] std::uint64_t shard_sequence(std::size_t shard) const;
  /// Sum of shard sequences — grows by one per append, so it upper-bounds
  /// every voucher serial ever folded away (Kgcd's restart baseline).
  [[nodiscard]] std::uint64_t total_sequence() const;
  /// Oldest sequence still readable from segments (snapshot fold point + 1).
  [[nodiscard]] std::uint64_t oldest_on_disk(std::size_t shard) const;
  /// Segment files currently on disk for `shard` (tests; sealed + active).
  [[nodiscard]] std::size_t segment_count(std::size_t shard) const;

  [[nodiscard]] std::size_t shards() const { return config_.shards; }
  [[nodiscard]] std::string shard_dir(std::size_t shard) const;

  void set_metrics(svc::ServiceMetrics* metrics) { metrics_ = metrics; }
  /// Test-only crash injection: invoked inside compact_shard at each phase
  /// (a fork()ed child _exit()s there to model a kill).
  void set_compaction_hook(std::function<void(std::size_t, CompactionPhase)> hook) {
    compaction_hook_ = std::move(hook);
  }

 private:
  struct ShardLog {
    mutable std::mutex mutex;
    int fd = -1;                   ///< active segment, open for append
    std::uint64_t seq = 0;         ///< last assigned sequence
    std::uint64_t snapshot_seq = 0;  ///< applied_seq of snapshot.bin (0 = none)
    std::uint64_t active_base = 1;   ///< base_seq of the active segment
    std::size_t active_bytes = 0;    ///< bytes written to the active segment
    std::vector<std::uint64_t> sealed_bases;  ///< sorted, oldest first
  };

  [[nodiscard]] std::string segment_path(std::size_t shard, std::uint64_t base) const;
  [[nodiscard]] std::string snapshot_path(std::size_t shard) const;
  /// Creates + fsyncs a fresh active segment at base `base`; updates state.
  bool open_active_segment(ShardLog& log, std::size_t shard, std::uint64_t base);
  bool fsync_shard_dir(std::size_t shard) const;
  /// Writes `snapshot` via temp+rename with the crash hook firing around the
  /// rename. Shared by compact_shard and install_snapshot.
  bool write_shard_snapshot(std::size_t shard, const Snapshot& snapshot);
  /// Deletes every on-disk segment of `shard` and reopens a fresh active one
  /// at seq+1. Assumes the snapshot covering them is already durable.
  bool drop_segments(ShardLog& log, std::size_t shard);
  void recover_shard(std::size_t shard, RecoveryReport& report,
                     const std::function<void(std::size_t, const SnapshotEntry&)>& on_entry,
                     const std::function<void(std::size_t, const WalRecord&)>& on_record);

  LogStoreConfig config_;
  std::unique_ptr<ShardLog[]> logs_;
  svc::ServiceMetrics* metrics_ = nullptr;
  std::function<void(std::size_t, CompactionPhase)> compaction_hook_;
};

}  // namespace mccls::kgc
