// Streaming catch-up replication for kgcd — the follower side of the
// kReplicate wire op plus the batch codec both sides share.
//
// Topology: one primary Kgcd owns enroll/revoke/vouch; N Replica instances
// each hold their own LogStore + KeyDirectory and pull the primary's state
// shard by shard. A replica answers kLookup from its local directory and
// chains kReplicate from its own store (a replica can seed another replica);
// every mutating op answers kReadOnly so a misrouted client retries at the
// primary.
//
// Catch-up protocol, per shard (the replica always asks for "everything
// after what I have"; the primary decides the transfer shape):
//
//   request  kReplicate(shard, from_seq = local_seq + 1)
//     → kRecords batch      records [from_seq ..], appended + applied
//                           locally; repeat until caught_up
//     → kSnapshotChunk      the requested range was compacted away; switch
//                           to bootstrap: request (from_seq = 0, cursor)
//                           pages until cursor + count == total, then
//                           install_snapshot at the chunk's applied_seq and
//                           resume tailing from applied_seq + 1
//
// A compaction racing the bootstrap bumps the primary's snapshot applied_seq
// mid-stream; the replica detects the changed applied_seq and restarts the
// page loop from cursor 0 (chunks of different snapshots must not be mixed).
// Because records are applied in sequence order and install_snapshot is
// atomic (same temp+rename protocol as compaction), a replica killed at any
// point resumes from its recovered local sequence — catch-up is idempotent.
//
//   batch    := version:u8=1  shard:u32  kind:u8
//   kind 1   (snapshot chunk): applied_seq:u64  cursor:u64  total:u64
//            count:u32  field(snapshot_entry)*
//   kind 2   (records): first_seq:u64  caught_up:u8  count:u32
//            (seq:u64 field(wal_record))*
//
// The decoder is total (qa fuzz target kgc_replicate): it enforces the item
// cap, cursor+count ≤ total, and strictly consecutive record sequences — a
// batch with a sequence gap never reaches apply().
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "kgc/directory.hpp"
#include "kgc/logstore.hpp"
#include "kgc/wire.hpp"
#include "svc/metrics.hpp"
#include "svc/resolver.hpp"

namespace mccls::kgc {

/// Items per batch the codec accepts; build_replicate_batch additionally
/// bounds the encoded bytes to fit kMaxKgcReplicateLen.
inline constexpr std::size_t kMaxReplicateItems = 512;

enum class ReplicateKind : std::uint8_t {
  kSnapshotChunk = 1,  ///< one page of a shard snapshot (bootstrap)
  kRecords = 2,        ///< consecutive WAL records (tailing)
};

struct ReplicateBatch {
  std::uint32_t shard = 0;
  ReplicateKind kind = ReplicateKind::kRecords;
  // kSnapshotChunk:
  std::uint64_t applied_seq = 0;  ///< the snapshot's fold point
  std::uint64_t cursor = 0;       ///< index of entries.front() in the snapshot
  std::uint64_t total = 0;        ///< entries in the whole snapshot
  std::vector<SnapshotEntry> entries;
  // kRecords:
  std::uint64_t first_seq = 0;    ///< sequence of records.front()
  bool caught_up = false;         ///< batch reaches the primary's sequence
  std::vector<WalRecord> records;

  friend bool operator==(const ReplicateBatch&, const ReplicateBatch&) = default;
};

crypto::Bytes encode_replicate_batch(const ReplicateBatch& batch);
std::optional<ReplicateBatch> decode_replicate_batch(std::span<const std::uint8_t> bytes);

/// Serves one kReplicate request against `store` — shared by the primary
/// (Kgcd) and by replicas chaining to further replicas. Picks records when
/// `[from_seq ...]` is still on disk, falls back to a snapshot chunk when it
/// was compacted away, and pages the snapshot at `cursor` when from_seq is 0.
/// The batch is trimmed so its encoding fits kMaxKgcReplicateLen. nullopt
/// when the request is unserviceable (shard out of range, from_seq beyond
/// the log, or a snapshot that fails to decode) — the caller answers
/// kMalformed / kStoreError.
std::optional<ReplicateBatch> build_replicate_batch(const LogStore& store,
                                                    std::uint32_t shard,
                                                    std::uint64_t from_seq,
                                                    std::uint64_t cursor,
                                                    std::size_t max_items);

/// How a replica reaches its upstream: one request frame in, one response
/// frame out (nullopt = transport failure). netd::BlockingClient::call fits
/// directly; tests pass a lambda wrapping the primary's handle_frame.
using Transport = std::function<std::optional<crypto::Bytes>(const crypto::Bytes&)>;

struct ReplicaConfig {
  std::string data_dir;            ///< the replica's own durable store
  std::size_t shards = 16;         ///< must match the primary's shard count
  std::size_t lru_per_shard = 64;
  cls::Epoch epoch = 0;            ///< resolve-side epoch policy (see Kgcd)
  cls::Epoch grace = 1;
  bool fsync = true;
  std::size_t segment_bytes = 1 << 20;
  std::size_t batch_limit = 256;   ///< items requested per kReplicate round
};

/// A read replica: durable local state (its own segmented store — a restart
/// resumes from the last applied sequence, not from zero) plus the catch-up
/// loop. Not internally thread-safe against itself: run sync()/poll() from
/// one thread; lookups via resolver()/handle_frame() are safe concurrently
/// with them (the directory takes its own shard locks).
class Replica {
 public:
  Replica(ReplicaConfig config, Transport transport);

  /// Catches every shard up to the upstream's current sequence (bootstrap
  /// via snapshot chunks where needed). False if any shard failed — already
  /// transferred batches stay applied, so retrying resumes, never restarts.
  bool sync();
  /// One catch-up pass over one shard.
  bool sync_shard(std::size_t shard);
  /// Alias for sync(): the live-tailing poll loop body.
  bool poll() { return sync(); }

  /// Serves the read-only subset of the kgc wire: kLookup from the local
  /// directory, kReplicate from the local store, kReadOnly for every
  /// mutating op, kMalformed for undecodable frames.
  crypto::Bytes handle_frame(std::span<const std::uint8_t> frame);

  /// Next sequence this replica would request for `shard` (tests).
  [[nodiscard]] std::uint64_t next_seq(std::size_t shard) const {
    return store_.shard_sequence(shard) + 1;
  }

  [[nodiscard]] KeyDirectory& directory() { return directory_; }
  [[nodiscard]] const KeyDirectory& directory() const { return directory_; }
  [[nodiscard]] const LogStore& store() const { return store_; }
  [[nodiscard]] const RecoveryReport& recovery() const { return recovery_; }
  [[nodiscard]] svc::ServiceMetrics& metrics() { return metrics_; }

 private:
  /// One kReplicate round trip; nullopt on transport/decode/status failure.
  std::optional<ReplicateBatch> fetch(std::uint32_t shard, std::uint64_t from_seq,
                                      std::uint64_t cursor);

  ReplicaConfig config_;
  Transport transport_;
  svc::ServiceMetrics metrics_;
  KeyDirectory directory_;
  LogStore store_;
  RecoveryReport recovery_;
  std::uint64_t next_request_id_ = 1;
};

/// svc::PkResolver over a Transport: resolves an identity with a kLookup
/// round trip (decoding the returned key bytes). Definitive directory
/// verdicts map to ok/not_vouched; transport failure is kUnavailable — the
/// transient outcome svc::ReplicaSetResolver fails over on.
class RemoteResolver final : public svc::PkResolver {
 public:
  explicit RemoteResolver(Transport transport) : transport_(std::move(transport)) {}

  svc::ResolveResult resolve(std::string_view id) override;

 private:
  Transport transport_;
  std::atomic<std::uint64_t> next_request_id_{1};  ///< resolve() is concurrent
};

}  // namespace mccls::kgc
