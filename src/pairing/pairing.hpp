// Modified Tate pairing ê : G1 × G1 → GT on the supersingular curve
// y^2 = x^3 + x, using the distortion map φ(x, y) = (−x, u·y), u² = −1.
// ê is bilinear, symmetric in distribution (ê(P,Q) and ê(Q,P) are both
// non-degenerate), and satisfies ê(aP, bQ) = ê(P, Q)^{ab}.
//
// Implementation: Miller loop over the bits of the subgroup order q with
// denominator elimination (embedding degree 2: vertical-line values lie in
// Fp and die in the final exponentiation), followed by the final
// exponentiation f^{(p²−1)/q} = (f^{p−1})^{(p+1)/q} = (conj(f)·f^{−1})^4.
#pragma once

#include "ec/g1.hpp"
#include "pairing/gt.hpp"

namespace mccls::pairing {

using ec::G1;

/// Computes ê(P, Q). Returns GT::one() when either input is infinity.
/// Non-degeneracy: ê(P, Q) != 1 whenever P and Q are non-identity points of
/// the order-q subgroup.
Gt pair(const G1& p, const G1& q);

}  // namespace mccls::pairing
