// Modified Tate pairing ê : G1 × G1 → GT on the supersingular curve
// y^2 = x^3 + x, using the distortion map φ(x, y) = (−x, u·y), u² = −1.
// ê is bilinear, symmetric in distribution (ê(P,Q) and ê(Q,P) are both
// non-degenerate), and satisfies ê(aP, bQ) = ê(P, Q)^{ab}.
//
// Implementation: Miller loop over the bits of the subgroup order q in
// Jacobian coordinates with denominator-free line evaluation — every line
// value is scaled by its (nonzero) Fp denominator, which the final
// exponentiation kills, so the whole loop runs without a single modular
// inversion. Vertical lines are eliminated the usual embedding-degree-2 way
// (their values lie in Fp and die in the final exponentiation). The only
// inversion in pair() is the one inside the final exponentiation
// f^{(p²−1)/q} = (f^{p−1})^{(p+1)/q} = (conj(f)·f^{−1})^4, and
// final_exponentiation_batch amortizes even that across a batch.
//
// The pre-optimization affine loop is retained as pair_affine(): it is the
// reference implementation the projective loop is cross-checked against
// (tests/test_pairing_projective.cpp) and the baseline bench_pairing
// measures the speedup over.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "ec/g1.hpp"
#include "math/fp2.hpp"
#include "pairing/gt.hpp"

namespace mccls::pairing {

using ec::G1;

/// Computes ê(P, Q). Returns GT::one() when either input is infinity.
/// Non-degeneracy: ê(P, Q) != 1 whenever P and Q are non-identity points of
/// the order-q subgroup.
Gt pair(const G1& p, const G1& q);

/// Reference implementation: the original affine Miller loop (one field
/// inversion per doubling/addition step). Kept for cross-checking and as
/// the bench_pairing baseline; use pair() everywhere else.
Gt pair_affine(const G1& p, const G1& q);

/// The projective pairing on the portable Montgomery backend — the exact
/// pre-CIOS configuration, kept callable in the same binary. It anchors the
/// bench_pairing `pair_portable*` series (what one coalesced-batch pairing
/// used to cost) and the CIOS-vs-portable differential property.
Gt pair_portable(const G1& p, const G1& q);

/// Computes ∏ᵢ ê(Pᵢ, Qᵢ) with ONE shared Miller loop: a single f-squaring
/// chain accumulates every pair's line functions, and one final
/// exponentiation reduces the product. Exactly equal to multiplying the k
/// individual pair() values — including degenerate non-subgroup inputs,
/// whose zero Miller values are detected per pair and contribute Gt::one()
/// just as they do in pair(). Empty span returns Gt::one(); k = 1 equals
/// pair(); infinity pairs contribute Gt::one().
Gt multi_pair(std::span<const std::pair<G1, G1>> pairs);

/// The unreduced Miller-loop value f_{q,P}(φQ) ∈ Fp2 (inversion-free,
/// Jacobian coordinates). pair(P, Q) == final_exponentiation(miller_loop(P, Q)).
math::Fp2 miller_loop(const G1& p, const G1& q);

/// Final exponentiation f^{(p²−1)/q}; maps a Miller value to canonical GT.
/// Costs one Fp2 (= one Fp) inversion.
Gt final_exponentiation(const math::Fp2& f);

/// Batched final exponentiation: one shared inversion (Montgomery's trick)
/// for the whole span instead of one per element. Used by PairingCache
/// warm-up where many pairings are reduced at once.
std::vector<Gt> final_exponentiation_batch(std::span<const math::Fp2> fs);

}  // namespace mccls::pairing
