// GT: the target group of the modified Tate pairing — the order-q subgroup
// of Fp2*, written multiplicatively. Elements produced by the final
// exponentiation are unitary (g^(p+1) = 1), so inversion is conjugation.
#pragma once

#include "math/fp2.hpp"

namespace mccls::pairing {

using math::Fp2;
using math::Fq;
using math::U256;

class Gt {
 public:
  Gt() : v_(Fp2::one()) {}
  explicit Gt(const Fp2& v) : v_(v) {}

  static Gt one() { return Gt{}; }

  [[nodiscard]] bool is_one() const { return v_.is_one(); }
  [[nodiscard]] const Fp2& value() const { return v_; }

  friend Gt operator*(const Gt& a, const Gt& b) { return Gt{a.v_ * b.v_}; }
  Gt& operator*=(const Gt& o) { return *this = *this * o; }

  /// Inverse; valid for unitary elements (all pairing outputs).
  [[nodiscard]] Gt inv() const { return Gt{v_.conjugate()}; }

  [[nodiscard]] Gt pow(const U256& e) const { return Gt{v_.pow(e)}; }
  [[nodiscard]] Gt pow(const Fq& e) const { return pow(e.to_u256()); }

  friend bool operator==(const Gt&, const Gt&) = default;

  /// Canonical 64-byte encoding (big-endian re || im) for hashing transcripts.
  [[nodiscard]] std::array<std::uint8_t, 64> to_bytes() const {
    std::array<std::uint8_t, 64> out;
    const auto re = v_.re().to_u256().to_be_bytes();
    const auto im = v_.im().to_u256().to_be_bytes();
    std::copy(re.begin(), re.end(), out.begin());
    std::copy(im.begin(), im.end(), out.begin() + 32);
    return out;
  }

 private:
  Fp2 v_;
};

}  // namespace mccls::pairing
