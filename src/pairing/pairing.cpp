#include "pairing/pairing.hpp"

#include "math/fp2.hpp"

namespace mccls::pairing {

namespace {

using math::Fp;
using math::Fp2;
using math::U256;

// Evaluates the (non-vertical) line through T with slope `lambda` at the
// distorted point φ(Q) = (−xq, u·yq):
//   l(φQ) = u·yq − y_T − λ·(−xq − x_T)  =  (λ·(x_T − (−xq)) − y_T) + u·yq.
Fp2 line_eval(const G1& t, const Fp& lambda, const Fp& xq_neg, const Fp& yq) {
  const Fp re = lambda * (t.x() - xq_neg) - t.y();
  return Fp2{re, yq};
}

}  // namespace

Gt pair(const G1& p, const G1& q) {
  if (p.is_infinity() || q.is_infinity()) return Gt::one();

  const Fp xq_neg = q.x().neg();
  const Fp& yq = q.y();
  const U256& order = math::Fq::modulus();

  Fp2 f = Fp2::one();
  G1 t = p;
  for (unsigned i = order.bit_length() - 1; i-- > 0;) {
    // Doubling step: f <- f^2 · l_{T,T}(φQ); T <- 2T.
    f = f.square();
    if (!t.is_infinity()) {
      if (t.y().is_zero()) {
        // Vertical tangent: value lies in Fp, killed by final exponentiation.
        t = G1::infinity();
      } else {
        const Fp x2 = t.x().square();
        const Fp lambda = (x2.dbl() + x2 + Fp::one()) * t.y().dbl().inv();
        f *= line_eval(t, lambda, xq_neg, yq);
        const Fp x3 = lambda.square() - t.x().dbl();
        const Fp y3 = lambda * (t.x() - x3) - t.y();
        t = *G1::from_affine(x3, y3);
      }
    }
    if (order.bit(i)) {
      // Addition step: f <- f · l_{T,P}(φQ); T <- T + P.
      if (t.is_infinity()) {
        t = p;
      } else if (t.x() == p.x()) {
        // T == −P (T == P cannot occur mid-loop for prime-order P):
        // vertical line, value in Fp, skip the multiply.
        t = G1::infinity();
      } else {
        const Fp lambda = (p.y() - t.y()) * (p.x() - t.x()).inv();
        f *= line_eval(t, lambda, xq_neg, yq);
        const Fp x3 = lambda.square() - t.x() - p.x();
        const Fp y3 = lambda * (t.x() - x3) - t.y();
        t = *G1::from_affine(x3, y3);
      }
    }
  }

  // Final exponentiation: (p²−1)/q = (p−1)·(p+1)/q = (p−1)·4.
  // f^(p−1) = conj(f)·f^{−1} (Frobenius on Fp2 is conjugation), then square
  // twice for the exponent 4.
  const Fp2 g = f.conjugate() * f.inv();
  return Gt{g.square().square()};
}

}  // namespace mccls::pairing
