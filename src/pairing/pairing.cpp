#include "pairing/pairing.hpp"

#include <array>
#include <cstdint>

#include "math/batch_inv.hpp"
#include "math/fp2.hpp"

namespace mccls::pairing {

namespace {

using math::Fp;
using math::Fp2;
using math::U256;

// ---------------------------------------------------------------------------
// Non-adjacent form of the subgroup order q, most-significant digit first.
//
// q has Hamming weight 130 over 252 bits; its NAF has only 83 nonzero digits,
// so walking the NAF instead of the bits drops ~46 addition steps (~17M each)
// from every Miller loop. A −1 digit adds −P, i.e. runs the ordinary chord
// step against (xp, −yp); the extra vertical-line factors the textbook NAF
// recursion prescribes all take values in Fp at φ(Q) and die in f^(p−1),
// exactly like the denominators already eliminated below.
//
// EVERY Miller loop in this file — affine, projective, portable, multi_pair —
// walks THIS digit string. That is a correctness requirement, not a style
// choice: the differential suites assert exact equality between the variants
// even on degenerate non-subgroup inputs, where different addition chains
// meet different lines and so have different zero-line sets.
struct OrderNaf {
  std::array<signed char, 260> digit{};  // digit[0] is most significant (+1)
  unsigned len = 0;
};

const OrderNaf& order_naf() {
  static const OrderNaf naf = [] {
    // Local 5-limb copy of q (one spare limb so q+1 can never overflow).
    std::uint64_t w[5] = {0, 0, 0, 0, 0};
    {
      const U256& q = math::Fq::modulus();
      for (int i = 0; i < 4; ++i) w[i] = q.w[i];
    }
    signed char lsb_first[260];
    unsigned n = 0;
    while (w[0] | w[1] | w[2] | w[3] | w[4]) {
      signed char d = 0;
      if (w[0] & 1) {
        d = (w[0] & 2) ? -1 : 1;  // d = 2 − (w mod 4) ∈ {−1, +1}
        if (d == 1) {
          for (int i = 0; i < 5; ++i) {
            if (w[i]-- != 0) break;  // borrow ripples through zero limbs
          }
        } else {
          for (int i = 0; i < 5; ++i) {
            if (++w[i] != 0) break;  // carry ripples through ~0 limbs
          }
        }
      }
      lsb_first[n++] = d;
      for (int i = 0; i < 4; ++i) w[i] = (w[i] >> 1) | (w[i + 1] << 63);
      w[4] >>= 1;
    }
    OrderNaf out{};
    out.len = n;
    for (unsigned i = 0; i < n; ++i) out.digit[i] = lsb_first[n - 1 - i];
    return out;
  }();
  return naf;
}

// ---------------------------------------------------------------------------
// Affine reference implementation (pair_affine).
//
// Evaluates the (non-vertical) line through T with slope `lambda` at the
// distorted point φ(Q) = (−xq, u·yq):
//   l(φQ) = u·yq − y_T − λ·(−xq − x_T)  =  (λ·(x_T − (−xq)) − y_T) + u·yq.
Fp2 line_eval(const G1& t, const Fp& lambda, const Fp& xq_neg, const Fp& yq) {
  const Fp re = lambda * (t.x() - xq_neg) - t.y();
  return Fp2{re, yq};
}

Fp2 miller_loop_affine(const G1& p, const G1& q) {
  const Fp xq_neg = q.x().neg();
  const Fp& yq = q.y();
  const Fp yp_neg = p.y().neg();
  const OrderNaf& naf = order_naf();

  Fp2 f = Fp2::one();
  G1 t = p;  // consumes naf.digit[0] == +1
  for (unsigned i = 1; i < naf.len; ++i) {
    // Doubling step: f <- f^2 · l_{T,T}(φQ); T <- 2T.
    f = f.square();
    if (!t.is_infinity()) {
      if (t.y().is_zero()) {
        // Vertical tangent: value lies in Fp, killed by final exponentiation.
        t = G1::infinity();
      } else {
        const Fp x2 = t.x().square();
        const Fp lambda = (x2.dbl() + x2 + Fp::one()) * t.y().dbl().inv();
        f *= line_eval(t, lambda, xq_neg, yq);
        const Fp x3 = lambda.square() - t.x().dbl();
        const Fp y3 = lambda * (t.x() - x3) - t.y();
        t = G1::from_affine_unchecked(x3, y3);
      }
    }
    if (naf.digit[i] != 0) {
      // Addition step: f <- f · l_{T,±P}(φQ); T <- T ± P. A −1 digit is the
      // same chord step against −P = (xp, −yp).
      const Fp& py = naf.digit[i] > 0 ? p.y() : yp_neg;
      if (t.is_infinity()) {
        t = G1::from_affine_unchecked(p.x(), py);
      } else if (t.x() == p.x()) {
        // Vertical chord (T == ∓P; for prime-order P the T == ±P-with-
        // matching-y doubling case cannot occur mid-chain): value in Fp,
        // skip the multiply.
        t = G1::infinity();
      } else {
        const Fp lambda = (py - t.y()) * (p.x() - t.x()).inv();
        f *= line_eval(t, lambda, xq_neg, yq);
        const Fp x3 = lambda.square() - t.x() - p.x();
        const Fp y3 = lambda * (t.x() - x3) - t.y();
        t = G1::from_affine_unchecked(x3, y3);
      }
    }
  }
  return f;
}

}  // namespace

// ---------------------------------------------------------------------------
// Projective (Jacobian) Miller loop — no inversions.
//
// T is kept as (X : Y : Z), x = X/Z², y = Y/Z³. Both step types produce the
// new Z3 as exactly the denominator of their line slope (Z3 = 2YZ for the
// tangent, Z3 = Z·H for the chord), so each line value is scaled by the
// nonzero Fp constant that clears its denominator:
//
//   tangent at T, slope λ = (3X² + Z⁴)/(2YZ), scaled by 2YZ³ = Z3·Z²:
//     l·2YZ³ = (3X² + Z⁴)·(X + xq·Z²) − 2Y²  +  u·(yq·2YZ³)
//   chord through T and affine P, slope λ = (yp·Z³ − Y)/(Z·(xp·Z² − X)),
//   scaled by Z·H = Z3 (H = xp·Z² − X):
//     l·Z3 = (yp·Z³ − Y)·(xp + xq) − yp·Z3  +  u·(yq·Z3)
//
// Scaling a line value by c ∈ Fp* multiplies the final f by an Fp factor,
// and the final exponentiation starts with f^(p−1), where c^(p−1) = 1 by
// Fermat — the scale factors vanish. Per-step cost drops from ~1I + 5M (affine) to
// 12M + 6S (doubling) / 13M + 3S (addition) with I ≈ 60–100M — the whole
// pair() performs exactly one inversion (inside final_exponentiation).
//
// The loop is templated on the base-field type so the portable-backend
// reference (pair_portable) runs the very same step sequence on the
// loop-form Montgomery kernel; F is Fp or FpPortable.
namespace {

// One doubling step on T = (X : Y : Z): advances T <- 2T and emits the
// scaled tangent line at φQ into (l_re, l_im). Returns false (T became
// infinity, no line) for the vertical-tangent 2-torsion case. Kept
// out-of-line so pair(), pair_portable() and multi_pair() all run the
// exact same compiled step — the differential properties compare these
// paths transition for transition, and the shared copy keeps the fat
// multi-state loop from spilling its registers.
template <class F>
[[gnu::noinline]] bool proj_dbl_step(F& X, F& Y, F& Z, const F& xq, const F& yq,
                                     F& l_re, F& l_im) {
  if (Y.is_zero()) return false;  // vertical tangent: value in Fp, omitted
  const F xx = X.square();
  const F yy = Y.square();
  const F yyyy = yy.square();
  const F zz = Z.square();
  const F m = xx.dbl() + xx + zz.square();  // 3X² + Z⁴  (a = 1)
  const F s = (X * yy).dbl().dbl();         // 4XY²
  const F x3 = m.square() - s.dbl();
  const F z3 = (Y * Z).dbl();               // 2YZ — the slope denominator
  const F y3 = m * (s - x3) - yyyy.dbl().dbl().dbl();
  l_re = m * (X + xq * zz) - yy.dbl();
  l_im = yq * (z3 * zz);
  X = x3;
  Y = y3;
  Z = z3;
  return true;
}

// One mixed-addition step T <- T + A (A affine, T != infinity): emits the
// scaled chord line at φQ. The NAF loops pass A = P or A = −P = (xp, −yp).
// Returns false (T became infinity, no line) for the vertical chord T == −A;
// the T == A doubling case cannot occur mid-chain for prime-order P.
template <class F>
[[gnu::noinline]] bool proj_add_step(F& X, F& Y, F& Z, const F& xp, const F& yp,
                                     const F& xq, const F& yq, F& l_re, F& l_im) {
  const F zz = Z.square();
  const F u2 = xp * zz;
  const F s2 = yp * (zz * Z);
  if (u2 == X) return false;
  const F h = u2 - X;
  const F r = s2 - Y;
  const F hh = h.square();
  const F hhh = h * hh;
  const F v = X * hh;
  const F x3 = r.square() - hhh - v.dbl();
  const F y3 = r * (v - x3) - Y * hhh;
  const F z3 = Z * h;                         // the slope denominator
  l_re = r * (xp + xq) - yp * z3;
  l_im = yq * z3;
  X = x3;
  Y = y3;
  Z = z3;
  return true;
}

template <class F>
math::Fe2<F> miller_loop_proj(const F& xp, const F& yp, const F& xq, const F& yq) {
  using F2 = math::Fe2<F>;
  const OrderNaf& naf = order_naf();
  const F yp_neg = yp.neg();

  F2 f = F2::one();
  // T = (X : Y : Z), starts at P (affine, Z = 1) — naf.digit[0] == +1.
  // t_inf tracks Z == 0 explicitly so the hot path never tests a field
  // element for zero.
  F X = xp;
  F Y = yp;
  F Z = F::one();
  bool t_inf = false;
  F l_re, l_im;

  for (unsigned i = 1; i < naf.len; ++i) {
    // Doubling step: f <- f^2 · l_{T,T}(φQ); T <- 2T.
    f = f.square();
    if (!t_inf) {
      if (proj_dbl_step(X, Y, Z, xq, yq, l_re, l_im)) {
        f *= F2{l_re, l_im};
      } else {
        t_inf = true;
      }
    }
    const int d = naf.digit[i];
    if (d != 0) {
      // Addition step: f <- f · l_{T,±P}(φQ); T <- T ± P (mixed, ±P affine,
      // −P = (xp, −yp)).
      const F& py = d > 0 ? yp : yp_neg;
      if (t_inf) {
        X = xp;
        Y = py;
        Z = F::one();
        t_inf = false;
      } else if (proj_add_step(X, Y, Z, xp, py, xq, yq, l_re, l_im)) {
        f *= F2{l_re, l_im};
      } else {
        t_inf = true;
      }
    }
  }
  return f;
}

// Final-exponentiation core on any backend: f^{(p²−1)/q} = (conj(f)·f⁻¹)⁴.
template <class F2>
F2 final_exp_core(const F2& f) {
  const F2 g = f.conjugate() * f.inv();
  return g.square().square();
}

}  // namespace

math::Fp2 miller_loop(const G1& p, const G1& q) {
  if (p.is_infinity() || q.is_infinity()) return Fp2::one();
  return miller_loop_proj<Fp>(p.x(), p.y(), q.x(), q.y());
}

// Final exponentiation: (p²−1)/q = (p−1)·(p+1)/q = (p−1)·4.
// f^(p−1) = conj(f)·f^{−1} (Frobenius on Fp2 is conjugation), then square
// twice for the exponent 4.
Gt final_exponentiation(const math::Fp2& f) {
  // f == 0 can only arise from degenerate non-subgroup inputs whose pairing
  // value is unconstrained; map them to the identity instead of inverting 0.
  if (f.is_zero()) return Gt::one();
  return Gt{final_exp_core(f)};
}

std::vector<Gt> final_exponentiation_batch(std::span<const math::Fp2> fs) {
  std::vector<Gt> out(fs.size(), Gt::one());
  std::vector<Fp2> invs;
  invs.reserve(fs.size());
  for (const Fp2& f : fs) {
    if (!f.is_zero()) invs.push_back(f);
  }
  math::batch_invert(std::span<Fp2>(invs));
  std::size_t k = 0;
  for (std::size_t i = 0; i < fs.size(); ++i) {
    if (fs[i].is_zero()) continue;
    const Fp2 g = fs[i].conjugate() * invs[k++];
    out[i] = Gt{g.square().square()};
  }
  return out;
}

Gt pair(const G1& p, const G1& q) {
  return final_exponentiation(miller_loop(p, q));
}

Gt pair_affine(const G1& p, const G1& q) {
  if (p.is_infinity() || q.is_infinity()) return Gt::one();
  return final_exponentiation(miller_loop_affine(p, q));
}

Gt pair_portable(const G1& p, const G1& q) {
  if (p.is_infinity() || q.is_infinity()) return Gt::one();
  using Fpp = math::FpPortable;
  // Fp and FpPortable share R = 2^256, so Montgomery residues carry over
  // verbatim; only the multiplier differs.
  const auto cast = [](const Fp& v) { return Fpp::from_raw(v.raw()); };
  const math::Fe2<Fpp> f =
      miller_loop_proj<Fpp>(cast(p.x()), cast(p.y()), cast(q.x()), cast(q.y()));
  if (f.is_zero()) return Gt::one();
  const math::Fe2<Fpp> g = final_exp_core(f);
  return Gt{Fp2{Fp::from_raw(g.re().raw()), Fp::from_raw(g.im().raw())}};
}

Gt multi_pair(std::span<const std::pair<G1, G1>> pairs) {
  // Per-pair Miller state. The step formulas below are the same as
  // miller_loop_proj's, transition for transition — the differential
  // property multi_pair_eq_product_of_pairs holds the two in lockstep.
  struct State {
    Fp xp, yp, yp_neg, xq, yq;  // affine inputs (−P precomputed for −1 digits)
    Fp X, Y, Z;                 // running Jacobian T
    bool t_inf;
    bool dead;  // hit a zero line value: this pair's Miller value is zero
  };
  std::vector<State> states;
  states.reserve(pairs.size());
  for (const auto& [p, q] : pairs) {
    // Infinity pairs contribute ê(P, Q) = 1 — same as pair()'s early return.
    if (p.is_infinity() || q.is_infinity()) continue;
    states.push_back(State{p.x(), p.y(), p.y().neg(), q.x(), q.y(), p.x(),
                           p.y(), Fp::one(), false, false});
  }
  if (states.empty()) return Gt::one();

  const OrderNaf& naf = order_naf();

  // One pass of the shared loop: a single f² per bit covers every pair, then
  // each live pair folds its line value in. A zero line (possible only for
  // degenerate non-subgroup inputs) zeroes that pair's own Miller value;
  // pair() maps such values to Gt::one(), so the pair must drop out of the
  // product rather than zeroing all of f. Line values depend only on the
  // pair's own T-chain, so one re-run with the dead pairs removed matches
  // ∏ pair() exactly.
  const auto run = [&](std::vector<State>& st) {
    Fp2 f = Fp2::one();
    bool any_dead = false;
    Fp l_re, l_im;
    for (unsigned i = 1; i < naf.len; ++i) {
      f = f.square();
      const int d = naf.digit[i];
      for (State& s : st) {
        if (s.dead) continue;
        // Doubling step: f <- f · l_{T,T}(φQ); T <- 2T.
        if (!s.t_inf) {
          if (proj_dbl_step(s.X, s.Y, s.Z, s.xq, s.yq, l_re, l_im)) {
            if (l_re.is_zero() && l_im.is_zero()) {
              s.dead = true;
              any_dead = true;
              continue;
            }
            f *= Fp2{l_re, l_im};
          } else {
            s.t_inf = true;
          }
        }
        if (d != 0) {
          // Addition step: f <- f · l_{T,±P}(φQ); T <- T ± P.
          const Fp& py = d > 0 ? s.yp : s.yp_neg;
          if (s.t_inf) {
            s.X = s.xp;
            s.Y = py;
            s.Z = Fp::one();
            s.t_inf = false;
          } else if (proj_add_step(s.X, s.Y, s.Z, s.xp, py, s.xq, s.yq, l_re,
                                   l_im)) {
            if (l_re.is_zero() && l_im.is_zero()) {
              s.dead = true;
              any_dead = true;
              continue;
            }
            f *= Fp2{l_re, l_im};
          } else {
            s.t_inf = true;
          }
        }
      }
    }
    return std::pair<Fp2, bool>{f, any_dead};
  };

  auto [f, any_dead] = run(states);
  if (any_dead) {
    std::erase_if(states, [](const State& s) { return s.dead; });
    if (states.empty()) return Gt::one();
    for (State& s : states) {
      s.X = s.xp;
      s.Y = s.yp;
      s.Z = Fp::one();
      s.t_inf = false;
    }
    f = run(states).first;  // deterministic per pair: no new deaths possible
  }
  return final_exponentiation(f);
}

}  // namespace mccls::pairing
