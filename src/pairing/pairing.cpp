#include "pairing/pairing.hpp"

#include "math/batch_inv.hpp"
#include "math/fp2.hpp"

namespace mccls::pairing {

namespace {

using math::Fp;
using math::Fp2;
using math::U256;

// ---------------------------------------------------------------------------
// Affine reference implementation (pair_affine).
//
// Evaluates the (non-vertical) line through T with slope `lambda` at the
// distorted point φ(Q) = (−xq, u·yq):
//   l(φQ) = u·yq − y_T − λ·(−xq − x_T)  =  (λ·(x_T − (−xq)) − y_T) + u·yq.
Fp2 line_eval(const G1& t, const Fp& lambda, const Fp& xq_neg, const Fp& yq) {
  const Fp re = lambda * (t.x() - xq_neg) - t.y();
  return Fp2{re, yq};
}

Fp2 miller_loop_affine(const G1& p, const G1& q) {
  const Fp xq_neg = q.x().neg();
  const Fp& yq = q.y();
  const U256& order = math::Fq::modulus();

  Fp2 f = Fp2::one();
  G1 t = p;
  for (unsigned i = order.bit_length() - 1; i-- > 0;) {
    // Doubling step: f <- f^2 · l_{T,T}(φQ); T <- 2T.
    f = f.square();
    if (!t.is_infinity()) {
      if (t.y().is_zero()) {
        // Vertical tangent: value lies in Fp, killed by final exponentiation.
        t = G1::infinity();
      } else {
        const Fp x2 = t.x().square();
        const Fp lambda = (x2.dbl() + x2 + Fp::one()) * t.y().dbl().inv();
        f *= line_eval(t, lambda, xq_neg, yq);
        const Fp x3 = lambda.square() - t.x().dbl();
        const Fp y3 = lambda * (t.x() - x3) - t.y();
        t = G1::from_affine_unchecked(x3, y3);
      }
    }
    if (order.bit(i)) {
      // Addition step: f <- f · l_{T,P}(φQ); T <- T + P.
      if (t.is_infinity()) {
        t = p;
      } else if (t.x() == p.x()) {
        // T == −P (T == P cannot occur mid-loop for prime-order P):
        // vertical line, value in Fp, skip the multiply.
        t = G1::infinity();
      } else {
        const Fp lambda = (p.y() - t.y()) * (p.x() - t.x()).inv();
        f *= line_eval(t, lambda, xq_neg, yq);
        const Fp x3 = lambda.square() - t.x() - p.x();
        const Fp y3 = lambda * (t.x() - x3) - t.y();
        t = G1::from_affine_unchecked(x3, y3);
      }
    }
  }
  return f;
}

}  // namespace

// ---------------------------------------------------------------------------
// Projective (Jacobian) Miller loop — no inversions.
//
// T is kept as (X : Y : Z), x = X/Z², y = Y/Z³. Both step types produce the
// new Z3 as exactly the denominator of their line slope (Z3 = 2YZ for the
// tangent, Z3 = Z·H for the chord), so each line value is scaled by the
// nonzero Fp constant that clears its denominator:
//
//   tangent at T, slope λ = (3X² + Z⁴)/(2YZ), scaled by 2YZ³ = Z3·Z²:
//     l·2YZ³ = (3X² + Z⁴)·(X + xq·Z²) − 2Y²  +  u·(yq·2YZ³)
//   chord through T and affine P, slope λ = (yp·Z³ − Y)/(Z·(xp·Z² − X)),
//   scaled by Z·H = Z3 (H = xp·Z² − X):
//     l·Z3 = (yp·Z³ − Y)·(xp + xq) − yp·Z3  +  u·(yq·Z3)
//
// Scaling a line value by c ∈ Fp* multiplies the final f by an Fp factor,
// and the final exponentiation starts with f^(p−1), where c^(p−1) = 1 by
// Fermat — the scale factors vanish. Per-step cost drops from ~1I + 5M (affine) to
// 12M + 6S (doubling) / 13M + 3S (addition) with I ≈ 60–100M — the whole
// pair() performs exactly one inversion (inside final_exponentiation).
math::Fp2 miller_loop(const G1& p, const G1& q) {
  if (p.is_infinity() || q.is_infinity()) return Fp2::one();

  const Fp& xp = p.x();
  const Fp& yp = p.y();
  const Fp& xq = q.x();
  const Fp& yq = q.y();
  const U256& order = math::Fq::modulus();

  Fp2 f = Fp2::one();
  // T = (X : Y : Z), starts at P (affine, Z = 1). t_inf tracks Z == 0
  // explicitly so the hot path never tests a field element for zero.
  Fp X = xp;
  Fp Y = yp;
  Fp Z = Fp::one();
  bool t_inf = false;

  for (unsigned i = order.bit_length() - 1; i-- > 0;) {
    // Doubling step: f <- f^2 · l_{T,T}(φQ); T <- 2T.
    f = f.square();
    if (!t_inf) {
      if (Y.is_zero()) {
        // Vertical tangent (2-torsion T): value lies in Fp, omitted.
        t_inf = true;
      } else {
        const Fp xx = X.square();
        const Fp yy = Y.square();
        const Fp yyyy = yy.square();
        const Fp zz = Z.square();
        const Fp m = xx.dbl() + xx + zz.square();  // 3X² + Z⁴  (a = 1)
        const Fp s = (X * yy).dbl().dbl();         // 4XY²
        const Fp x3 = m.square() - s.dbl();
        const Fp z3 = (Y * Z).dbl();               // 2YZ — the slope denominator
        const Fp y3 = m * (s - x3) - yyyy.dbl().dbl().dbl();
        const Fp l_re = m * (X + xq * zz) - yy.dbl();
        const Fp l_im = yq * (z3 * zz);
        f *= Fp2{l_re, l_im};
        X = x3;
        Y = y3;
        Z = z3;
      }
    }
    if (order.bit(i)) {
      // Addition step: f <- f · l_{T,P}(φQ); T <- T + P (mixed, P affine).
      if (t_inf) {
        X = xp;
        Y = yp;
        Z = Fp::one();
        t_inf = false;
      } else {
        const Fp zz = Z.square();
        const Fp u2 = xp * zz;
        const Fp s2 = yp * (zz * Z);
        if (u2 == X) {
          // T == −P (T == P cannot occur mid-loop for prime-order P):
          // vertical line, value in Fp, skip the multiply.
          t_inf = true;
        } else {
          const Fp h = u2 - X;
          const Fp r = s2 - Y;
          const Fp hh = h.square();
          const Fp hhh = h * hh;
          const Fp v = X * hh;
          const Fp x3 = r.square() - hhh - v.dbl();
          const Fp y3 = r * (v - x3) - Y * hhh;
          const Fp z3 = Z * h;                     // the slope denominator
          const Fp l_re = r * (xp + xq) - yp * z3;
          const Fp l_im = yq * z3;
          f *= Fp2{l_re, l_im};
          X = x3;
          Y = y3;
          Z = z3;
        }
      }
    }
  }
  return f;
}

// Final exponentiation: (p²−1)/q = (p−1)·(p+1)/q = (p−1)·4.
// f^(p−1) = conj(f)·f^{−1} (Frobenius on Fp2 is conjugation), then square
// twice for the exponent 4.
Gt final_exponentiation(const math::Fp2& f) {
  // f == 0 can only arise from degenerate non-subgroup inputs whose pairing
  // value is unconstrained; map them to the identity instead of inverting 0.
  if (f.is_zero()) return Gt::one();
  const Fp2 g = f.conjugate() * f.inv();
  return Gt{g.square().square()};
}

std::vector<Gt> final_exponentiation_batch(std::span<const math::Fp2> fs) {
  std::vector<Gt> out(fs.size(), Gt::one());
  std::vector<Fp2> invs;
  invs.reserve(fs.size());
  for (const Fp2& f : fs) {
    if (!f.is_zero()) invs.push_back(f);
  }
  math::batch_invert(std::span<Fp2>(invs));
  std::size_t k = 0;
  for (std::size_t i = 0; i < fs.size(); ++i) {
    if (fs[i].is_zero()) continue;
    const Fp2 g = fs[i].conjugate() * invs[k++];
    out[i] = Gt{g.square().square()};
  }
  return out;
}

Gt pair(const G1& p, const G1& q) {
  return final_exponentiation(miller_loop(p, q));
}

Gt pair_affine(const G1& p, const G1& q) {
  if (p.is_infinity() || q.is_infinity()) return Gt::one();
  return final_exponentiation(miller_loop_affine(p, q));
}

}  // namespace mccls::pairing
