#include "ec/g1.hpp"

#include <algorithm>
#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "math/batch_inv.hpp"

namespace mccls::ec {

namespace {

// Jacobian coordinates (X : Y : Z), x = X/Z^2, y = Y/Z^3, for the curve
// y^2 = x^3 + a*x with a = 1. Z == 0 encodes the point at infinity.
struct Jac {
  Fp X = Fp::one();
  Fp Y = Fp::one();
  Fp Z = Fp::zero();

  [[nodiscard]] bool is_inf() const { return Z.is_zero(); }
};

Jac to_jac(const G1& p) {
  if (p.is_infinity()) return Jac{};
  return Jac{p.x(), p.y(), Fp::one()};
}

Jac jac_dbl(const Jac& p) {
  if (p.is_inf() || p.Y.is_zero()) return Jac{};
  const Fp xx = p.X.square();
  const Fp yy = p.Y.square();
  const Fp yyyy = yy.square();
  const Fp zz = p.Z.square();
  const Fp s = ((p.X + yy).square() - xx - yyyy).dbl();
  const Fp m = xx.dbl() + xx + zz.square();  // 3*XX + a*ZZ^2, a = 1
  const Fp x3 = m.square() - s.dbl();
  const Fp eight_yyyy = yyyy.dbl().dbl().dbl();
  const Fp y3 = m * (s - x3) - eight_yyyy;
  const Fp z3 = (p.Y + p.Z).square() - yy - zz;
  return Jac{x3, y3, z3};
}

// Affine precomputation-table entry (Z == 1 implicitly); `inf` covers the
// identity so tables can be normalized wholesale.
struct Aff {
  Fp x;
  Fp y;
  bool inf = true;
};

Aff to_aff(const G1& p) {
  if (p.is_infinity()) return Aff{};
  return Aff{p.x(), p.y(), false};
}

// Mixed addition p + q with q affine (madd-2007-bl): 8M + 3S, vs 12M + 4S
// for the general Jacobian addition. This is what makes batch-normalized
// tables pay off.
Jac jac_add_affine(const Jac& p, const Aff& q) {
  if (q.inf) return p;
  if (p.is_inf()) return Jac{q.x, q.y, Fp::one()};
  const Fp z1z1 = p.Z.square();
  const Fp u2 = q.x * z1z1;
  const Fp s2 = q.y * p.Z * z1z1;
  if (u2 == p.X) {
    return s2 == p.Y ? jac_dbl(p) : Jac{};
  }
  const Fp h = u2 - p.X;
  const Fp hh = h.square();
  const Fp hhh = h * hh;
  const Fp v = p.X * hh;
  const Fp r = s2 - p.Y;
  const Fp x3 = r.square() - hhh - v.dbl();
  const Fp y3 = r * (v - x3) - p.Y * hhh;
  const Fp z3 = p.Z * h;
  return Jac{x3, y3, z3};
}

// Normalizes a whole table of Jacobian points to affine with ONE modular
// inversion (Montgomery's simultaneous-inversion trick) instead of one per
// point. `out` must have the same extent as `in`.
void batch_to_affine(std::span<const Jac> in, std::span<Aff> out) {
  std::vector<Fp> zs;
  zs.reserve(in.size());
  for (const Jac& p : in) {
    if (!p.is_inf()) zs.push_back(p.Z);
  }
  math::batch_invert(std::span<Fp>(zs));
  std::size_t k = 0;
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (in[i].is_inf()) {
      out[i] = Aff{};
      continue;
    }
    const Fp zinv = zs[k++];
    const Fp zinv2 = zinv.square();
    out[i] = Aff{in[i].X * zinv2, in[i].Y * zinv2 * zinv, false};
  }
}

Jac jac_add(const Jac& p, const Jac& q) {
  if (p.is_inf()) return q;
  if (q.is_inf()) return p;
  const Fp z1z1 = p.Z.square();
  const Fp z2z2 = q.Z.square();
  const Fp u1 = p.X * z2z2;
  const Fp u2 = q.X * z1z1;
  const Fp s1 = p.Y * q.Z * z2z2;
  const Fp s2 = q.Y * p.Z * z1z1;
  if (u1 == u2) {
    return s1 == s2 ? jac_dbl(p) : Jac{};
  }
  const Fp h = u2 - u1;
  const Fp hh = h.square();
  const Fp hhh = h * hh;
  const Fp v = u1 * hh;
  const Fp r = s2 - s1;
  const Fp x3 = r.square() - hhh - v.dbl();
  const Fp y3 = r * (v - x3) - s1 * hhh;
  const Fp z3 = p.Z * q.Z * h;
  return Jac{x3, y3, z3};
}

G1 jac_to_affine(const Jac& p) {
  if (p.is_inf()) return G1::infinity();
  const Fp zinv = p.Z.inv();
  const Fp zinv2 = zinv.square();
  const Fp x = p.X * zinv2;
  const Fp y = p.Y * zinv2 * zinv;
  // The group law preserves curve membership; skip the on-curve round trip.
  return G1::from_affine_unchecked(x, y);
}

}  // namespace

const G1& G1::generator() {
  static const G1 g = [] {
    const Fp gx = Fp::from_u256(U256{{0x639a6b00745bc899ULL, 0xe188c1cf11041605ULL,
                                      0xd0ee296ac9f66a58ULL, 0x23c69fdf9f516907ULL}});
    const Fp gy = Fp::from_u256(U256{{0x5203d1cb87e414e0ULL, 0x6a2d19888892a7baULL,
                                      0x23dc313b346851b1ULL, 0x1731118a1b86a597ULL}});
    auto point = from_affine(gx, gy);
    if (!point) throw std::logic_error("G1::generator: constant off curve");
    return *point;
  }();
  return g;
}

std::optional<G1> G1::from_affine(const Fp& x, const Fp& y) {
  G1 p{x, y};
  if (!p.is_on_curve()) return std::nullopt;
  return p;
}

std::optional<G1> G1::lift_x(const Fp& x) {
  const Fp rhs = x.square() * x + x;
  const auto y = sqrt_fp(rhs);
  if (!y) return std::nullopt;
  const Fp y_neg = y->neg();
  const bool keep = cmp(y->to_u256(), y_neg.to_u256()) <= 0;
  return G1{x, keep ? *y : y_neg};
}

bool G1::is_on_curve() const {
  if (inf_) return true;
  return y_.square() == x_.square() * x_ + x_;
}

bool G1::in_subgroup() const { return mul(Fq::modulus()).is_infinity(); }

G1 G1::neg() const {
  if (inf_) return *this;
  return G1{x_, y_.neg()};
}

G1 operator+(const G1& a, const G1& b) {
  if (a.is_infinity()) return b;
  if (b.is_infinity()) return a;
  if (a.x_ == b.x_) {
    if (a.y_ == b.y_.neg()) return G1::infinity();
    return a.dbl();
  }
  const Fp lambda = (b.y_ - a.y_) * (b.x_ - a.x_).inv();
  const Fp x3 = lambda.square() - a.x_ - b.x_;
  const Fp y3 = lambda * (a.x_ - x3) - a.y_;
  return G1{x3, y3};
}

G1 G1::dbl() const {
  if (inf_ || y_.is_zero()) return infinity();
  // lambda = (3x^2 + a) / 2y with a = 1.
  const Fp three_x2 = x_.square().dbl() + x_.square();
  const Fp lambda = (three_x2 + Fp::one()) * y_.dbl().inv();
  const Fp x3 = lambda.square() - x_.dbl();
  const Fp y3 = lambda * (x_ - x3) - y_;
  return G1{x3, y3};
}

G1 G1::mul(const U256& k) const {
  if (inf_ || k.is_zero()) return infinity();
  // 4-bit fixed-window double-and-add. The window table is built in Jacobian
  // form, then normalized to affine with a single batched inversion so the
  // main loop runs on cheap mixed additions (8M+3S vs 12M+4S).
  const Aff base = to_aff(*this);
  std::array<Jac, 15> jt;
  jt[0] = to_jac(*this);
  for (int i = 1; i < 15; ++i) jt[i] = jac_add_affine(jt[i - 1], base);
  std::array<Aff, 16> table;
  table[0] = Aff{};  // infinity
  batch_to_affine(jt, std::span<Aff>(table).subspan(1));

  Jac acc;
  const unsigned bits = k.bit_length();
  const unsigned windows = (bits + 3) / 4;
  for (unsigned wi = windows; wi-- > 0;) {
    if (wi + 1 != windows) {
      acc = jac_dbl(jac_dbl(jac_dbl(jac_dbl(acc))));
    }
    const unsigned nibble =
        static_cast<unsigned>(k.w[(wi * 4) / 64] >> ((wi * 4) % 64)) & 0xF;
    if (nibble != 0) acc = jac_add_affine(acc, table[nibble]);
  }
  return jac_to_affine(acc);
}

G1 G1::mul(const Fq& k) const { return mul(k.to_u256()); }

G1 G1::mul2(const U256& a, const G1& p, const U256& b, const G1& q) {
  // Shamir's trick: precompute p, q, p+q; one doubling chain, one add per
  // set bit pair. All three table entries are affine (p+q costs one
  // inversion up front) so every table add in the loop is a mixed addition.
  const Aff ap = to_aff(p);
  const Aff aq = to_aff(q);
  const Aff apq = to_aff(p + q);
  Jac acc;
  const unsigned bits = std::max(a.bit_length(), b.bit_length());
  for (unsigned i = bits; i-- > 0;) {
    acc = jac_dbl(acc);
    const bool ba = a.bit(i);
    const bool bb = b.bit(i);
    if (ba && bb) {
      acc = jac_add_affine(acc, apq);
    } else if (ba) {
      acc = jac_add_affine(acc, ap);
    } else if (bb) {
      acc = jac_add_affine(acc, aq);
    }
  }
  return jac_to_affine(acc);
}

G1 G1::msm(std::span<const U256> ks, std::span<const G1> ps) {
  if (ks.size() != ps.size()) throw std::invalid_argument("G1::msm: extent mismatch");
  std::vector<Aff> bases;
  bases.reserve(ps.size());
  for (const G1& p : ps) bases.push_back(to_aff(p));
  unsigned bits = 0;
  for (const U256& k : ks) bits = std::max(bits, k.bit_length());
  Jac acc;
  for (unsigned i = bits; i-- > 0;) {
    acc = jac_dbl(acc);
    for (std::size_t j = 0; j < ks.size(); ++j) {
      if (ks[j].bit(i)) acc = jac_add_affine(acc, bases[j]);
    }
  }
  return jac_to_affine(acc);
}

G1 G1::mul_generator(const U256& k) {
  // Fixed-base window method: 64 windows of 4 bits, each with a 15-entry
  // table of (j << 4w)·G; a multiplication is then at most 64 additions and
  // no doublings. The whole 960-entry table is normalized to affine with a
  // single batched inversion at construction, so every runtime addition is
  // a mixed addition.
  static const auto table = [] {
    std::vector<Jac> jac(64 * 15);
    Jac base = to_jac(generator());
    for (int w = 0; w < 64; ++w) {
      Jac acc;  // infinity
      for (int j = 0; j < 15; ++j) {
        acc = jac_add(acc, base);
        jac[static_cast<std::size_t>(w) * 15 + static_cast<std::size_t>(j)] = acc;
      }
      // base <<= 4 bits
      base = jac_dbl(jac_dbl(jac_dbl(jac_dbl(base))));
    }
    auto tbl = std::make_unique<std::array<std::array<Aff, 15>, 64>>();
    batch_to_affine(jac, std::span<Aff>(tbl->front().data(), 64 * 15));
    return tbl;
  }();

  Jac acc;
  for (unsigned w = 0; w < 64; ++w) {
    const unsigned nibble =
        static_cast<unsigned>(k.w[(w * 4) / 64] >> ((w * 4) % 64)) & 0xF;
    if (nibble != 0) acc = jac_add_affine(acc, (*table)[w][nibble - 1]);
  }
  return jac_to_affine(acc);
}

std::array<std::uint8_t, G1::kEncodedSize> G1::to_bytes() const {
  std::array<std::uint8_t, kEncodedSize> out{};
  if (inf_) return out;  // tag 0x00
  const U256 xv = x_.to_u256();
  const U256 yv = y_.to_u256();
  out[0] = (yv.w[0] & 1) ? 0x03 : 0x02;
  const auto xb = xv.to_be_bytes();
  std::copy(xb.begin(), xb.end(), out.begin() + 1);
  return out;
}

std::optional<G1> G1::from_bytes(std::span<const std::uint8_t> bytes) {
  if (bytes.size() != kEncodedSize) return std::nullopt;
  if (bytes[0] == 0x00) {
    for (std::size_t i = 1; i < kEncodedSize; ++i) {
      if (bytes[i] != 0) return std::nullopt;
    }
    return infinity();
  }
  if (bytes[0] != 0x02 && bytes[0] != 0x03) return std::nullopt;
  const U256 xv = U256::from_be_bytes(bytes.subspan(1));
  if (cmp(xv, Fp::modulus()) >= 0) return std::nullopt;
  const Fp x = Fp::from_u256(xv);
  auto point = lift_x(x);
  if (!point) return std::nullopt;
  const bool want_odd = bytes[0] == 0x03;
  const bool have_odd = (point->y().to_u256().w[0] & 1) != 0;
  if (want_odd != have_odd) *point = point->neg();
  return point;
}

std::optional<Fp> sqrt_fp(const Fp& a) {
  // p ≡ 3 (mod 4), so a^((p+1)/4) is a square root when one exists.
  // (p+1)/4 equals the subgroup order q by construction.
  const Fp r = a.pow(Fq::modulus());
  if (r.square() == a) return r;
  return std::nullopt;
}

}  // namespace mccls::ec
