// The group G1: the order-q subgroup of the supersingular curve
//   E: y^2 = x^3 + x over Fp,   #E(Fp) = p + 1 = 4q,  embedding degree 2.
// Points are kept in affine coordinates at the API boundary; scalar
// multiplication uses Jacobian coordinates internally. The group is written
// additively throughout, matching the paper's notation.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>

#include "math/fe.hpp"
#include "math/u256.hpp"

namespace mccls::ec {

using math::Fp;
using math::Fq;
using math::U256;

class G1 {
 public:
  /// The point at infinity (additive identity).
  constexpr G1() = default;

  static G1 infinity() { return G1{}; }

  /// The fixed order-q generator G (DESIGN.md §4).
  static const G1& generator();

  /// Constructs a point from affine coordinates; rejects points not on E.
  /// Note: accepts any curve point, including ones outside the order-q
  /// subgroup — call in_subgroup() where that matters.
  static std::optional<G1> from_affine(const Fp& x, const Fp& y);

  /// Constructs a point from affine coordinates WITHOUT the on-curve check.
  /// Only for coordinates produced by the group law itself (Jacobian
  /// normalization, Miller-loop steps): the curve equation is an invariant
  /// there, and re-validating costs 3 field multiplications per call.
  /// Untrusted input must go through from_affine / from_bytes.
  static G1 from_affine_unchecked(const Fp& x, const Fp& y) { return G1{x, y}; }

  /// Lifts an x-coordinate to a curve point with the lexicographically
  /// smaller y, if x^3 + x is a square.
  static std::optional<G1> lift_x(const Fp& x);

  [[nodiscard]] bool is_infinity() const { return inf_; }
  /// Affine coordinates; only valid when !is_infinity().
  [[nodiscard]] const Fp& x() const { return x_; }
  [[nodiscard]] const Fp& y() const { return y_; }

  [[nodiscard]] bool is_on_curve() const;
  /// True iff q * P == O (the point lies in the prime-order subgroup).
  [[nodiscard]] bool in_subgroup() const;

  [[nodiscard]] G1 neg() const;
  friend G1 operator+(const G1& a, const G1& b);
  friend G1 operator-(const G1& a, const G1& b) { return a + b.neg(); }
  G1& operator+=(const G1& o) { return *this = *this + o; }

  [[nodiscard]] G1 dbl() const;

  /// Scalar multiplication by a plain integer (interpreted mod group order).
  [[nodiscard]] G1 mul(const U256& k) const;
  /// Scalar multiplication by a scalar-field element.
  [[nodiscard]] G1 mul(const Fq& k) const;
  /// Multiplication by the curve cofactor 4 (maps E(Fp) onto the subgroup).
  [[nodiscard]] G1 mul_cofactor() const { return dbl().dbl(); }

  /// Simultaneous double-scalar multiplication a·P + b·Q (Shamir's trick):
  /// one shared doubling chain instead of two. Used by the McCLS verifier
  /// for V·P − h·R (see bench_primitives for the ablation).
  static G1 mul2(const U256& a, const G1& p, const U256& b, const G1& q);

  /// Multi-scalar multiplication Σ kᵢ·Pᵢ with ONE doubling chain shared by
  /// all terms (depth = max bit length). Built for the batch verifier's
  /// short blinding scalars, where k full-width chains would dwarf the adds;
  /// correct for any scalar widths. ks and ps must have equal extent.
  static G1 msm(std::span<const U256> ks, std::span<const G1> ps);

  /// Fixed-base multiplication k·G using a lazily built window table over
  /// the group generator; ~4x faster than generic mul for the signer's hot
  /// path. Thread-compatible: the table is built on first use.
  static G1 mul_generator(const U256& k);
  static G1 mul_generator(const Fq& k) { return mul_generator(k.to_u256()); }

  /// Compressed encoding: 1 tag byte (0x00 infinity, 0x02/0x03 parity of y)
  /// followed by 32 bytes of big-endian x. Always 33 bytes.
  static constexpr std::size_t kEncodedSize = 33;
  [[nodiscard]] std::array<std::uint8_t, kEncodedSize> to_bytes() const;
  /// Decodes and validates (curve membership; not subgroup membership).
  static std::optional<G1> from_bytes(std::span<const std::uint8_t> bytes);

  friend bool operator==(const G1&, const G1&) = default;

 private:
  G1(const Fp& x, const Fp& y) : x_(x), y_(y), inf_(false) {}

  Fp x_{};
  Fp y_{};
  bool inf_ = true;
};

/// Square root in Fp for p ≡ 3 (mod 4): returns a^((p+1)/4) if it squares
/// back to a, otherwise nullopt. Exposed for hash-to-point and tests.
std::optional<Fp> sqrt_fp(const Fp& a);

}  // namespace mccls::ec
