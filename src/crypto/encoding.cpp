#include "crypto/encoding.hpp"

namespace mccls::crypto {

namespace {

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string to_hex(std::span<const std::uint8_t> data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string s;
  s.reserve(data.size() * 2);
  for (const std::uint8_t b : data) {
    s.push_back(kDigits[b >> 4]);
    s.push_back(kDigits[b & 0xF]);
  }
  return s;
}

std::optional<Bytes> from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) return std::nullopt;
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_digit(hex[i]);
    const int lo = hex_digit(hex[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out.push_back(static_cast<std::uint8_t>(hi << 4 | lo));
  }
  return out;
}

void ByteWriter::put_u32(std::uint32_t v) {
  for (int i = 3; i >= 0; --i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::put_u64(std::uint64_t v) {
  for (int i = 7; i >= 0; --i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::put_field(std::span<const std::uint8_t> data) {
  put_u32(static_cast<std::uint32_t>(data.size()));
  put_raw(data);
}

std::optional<std::uint8_t> ByteReader::get_u8() {
  if (pos_ + 1 > data_.size()) return std::nullopt;
  return data_[pos_++];
}

std::optional<std::uint32_t> ByteReader::get_u32() {
  if (pos_ + 4 > data_.size()) return std::nullopt;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = v << 8 | data_[pos_++];
  return v;
}

std::optional<std::uint64_t> ByteReader::get_u64() {
  if (pos_ + 8 > data_.size()) return std::nullopt;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = v << 8 | data_[pos_++];
  return v;
}

std::optional<Bytes> ByteReader::get_field() {
  const auto len = get_u32();
  if (!len) return std::nullopt;
  return get_raw(*len);
}

std::optional<Bytes> ByteReader::get_field(std::size_t max_len) {
  const auto len = get_u32();
  if (!len || *len > max_len) return std::nullopt;
  return get_raw(*len);
}

std::optional<Bytes> ByteReader::get_raw(std::size_t n) {
  if (pos_ + n > data_.size()) return std::nullopt;
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

}  // namespace mccls::crypto
