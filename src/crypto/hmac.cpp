#include "crypto/hmac.hpp"

#include <cstring>

namespace mccls::crypto {

HmacSha256::HmacSha256(std::span<const std::uint8_t> key) {
  std::array<std::uint8_t, Sha256::kBlockSize> k{};
  if (key.size() > Sha256::kBlockSize) {
    const auto d = Sha256::digest(key);
    std::memcpy(k.data(), d.data(), d.size());
  } else if (!key.empty()) {
    std::memcpy(k.data(), key.data(), key.size());
  }
  std::array<std::uint8_t, Sha256::kBlockSize> ipad_key;
  for (std::size_t i = 0; i < Sha256::kBlockSize; ++i) {
    ipad_key[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
    opad_key_[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
  }
  inner_.update(ipad_key);
}

HmacSha256::Mac HmacSha256::finalize() {
  const auto inner_digest = inner_.finalize();
  Sha256 outer;
  outer.update(opad_key_);
  outer.update(inner_digest);
  return outer.finalize();
}

}  // namespace mccls::crypto
