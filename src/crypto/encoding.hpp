// Small byte-level utilities shared by the CLS schemes and the simulator:
// an owning byte buffer alias, hex conversion, and length-prefixed
// serialization (ByteWriter / ByteReader) so multi-part messages hash and
// parse unambiguously.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace mccls::crypto {

using Bytes = std::vector<std::uint8_t>;

std::string to_hex(std::span<const std::uint8_t> data);
/// Returns nullopt on odd length or non-hex characters.
std::optional<Bytes> from_hex(std::string_view hex);

inline std::span<const std::uint8_t> as_bytes(std::string_view s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

/// Appends length-prefixed (u32 big-endian) fields; unambiguous framing for
/// both hashing transcripts and wire formats.
class ByteWriter {
 public:
  void put_u8(std::uint8_t v) { out_.push_back(v); }
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  /// Length-prefixed variable-size field.
  void put_field(std::span<const std::uint8_t> data);
  void put_field(std::string_view s) { put_field(as_bytes(s)); }
  /// Raw bytes, no prefix (for fixed-size fields).
  void put_raw(std::span<const std::uint8_t> data) {
    out_.insert(out_.end(), data.begin(), data.end());
  }

  [[nodiscard]] const Bytes& bytes() const { return out_; }
  Bytes take() { return std::move(out_); }

 private:
  Bytes out_;
};

/// Mirror of ByteWriter; all getters return nullopt on truncated input.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::optional<std::uint8_t> get_u8();
  std::optional<std::uint32_t> get_u32();
  std::optional<std::uint64_t> get_u64();
  std::optional<Bytes> get_field();
  /// get_field with an upper bound on the declared length: rejects a length
  /// prefix above `max_len` before attempting to read (or allocate) the
  /// payload. Boundary decoders (svc wire, key files) use this so a hostile
  /// length prefix can never size an allocation, whatever the buffer holds.
  std::optional<Bytes> get_field(std::size_t max_len);
  /// Exactly n raw bytes.
  std::optional<Bytes> get_raw(std::size_t n);

  [[nodiscard]] bool exhausted() const { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace mccls::crypto
