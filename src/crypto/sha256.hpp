// SHA-256 (FIPS 180-4), implemented from scratch with a streaming interface.
// Verified against the NIST short-message test vectors in tests/test_sha256.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

namespace mccls::crypto {

class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  static constexpr std::size_t kBlockSize = 64;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha256() { reset(); }

  void reset();
  void update(std::span<const std::uint8_t> data);
  void update(std::string_view s) {
    update(std::span{reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
  }
  /// Finalizes and returns the digest. The object must be reset() before reuse.
  Digest finalize();

  /// One-shot convenience.
  static Digest digest(std::span<const std::uint8_t> data) {
    Sha256 h;
    h.update(data);
    return h.finalize();
  }
  static Digest digest(std::string_view s) {
    Sha256 h;
    h.update(s);
    return h.finalize();
  }

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, kBlockSize> buffer_{};
  std::size_t buffer_len_ = 0;
  std::uint64_t total_bytes_ = 0;
  bool finalized_ = false;
};

}  // namespace mccls::crypto
