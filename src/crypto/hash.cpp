#include "crypto/hash.hpp"

#include <stdexcept>

#include "crypto/sha256.hpp"

namespace mccls::crypto {

namespace {

using math::U256;
using math::U512;

Sha256::Digest tagged_digest(std::string_view domain, std::uint8_t counter,
                             std::span<const std::uint8_t> data) {
  Sha256 h;
  ByteWriter prefix;
  prefix.put_field(domain);
  prefix.put_u8(counter);
  h.update(prefix.bytes());
  h.update(data);
  return h.finalize();
}

}  // namespace

math::Fq hash_to_fq(std::string_view domain, std::span<const std::uint8_t> data) {
  const auto d0 = tagged_digest(domain, 0x00, data);
  const auto d1 = tagged_digest(domain, 0x01, data);
  std::array<std::uint8_t, 64> wide;
  std::copy(d0.begin(), d0.end(), wide.begin());
  std::copy(d1.begin(), d1.end(), wide.begin() + 32);
  return math::Fq::from_wide(U512::from_be_bytes(wide));
}

ec::G1 hash_to_g1(std::string_view domain, std::span<const std::uint8_t> data) {
  for (std::uint32_t ctr = 0; ctr < 256; ++ctr) {
    Sha256 h;
    ByteWriter prefix;
    prefix.put_field(domain);
    prefix.put_u8(0x02);  // oracle tag distinct from hash_to_fq's 0x00/0x01
    h.update(prefix.bytes());
    h.update(data);
    ByteWriter suffix;
    suffix.put_u32(ctr);
    h.update(suffix.bytes());
    const auto digest = h.finalize();
    const math::Fp x = math::Fp::from_u256(U256::from_be_bytes(digest));
    if (auto point = ec::G1::lift_x(x)) {
      const ec::G1 mapped = point->mul_cofactor();
      if (!mapped.is_infinity()) return mapped;
    }
  }
  // Probability ~2^-256; reaching this means the hash layer is broken.
  throw std::logic_error("hash_to_g1: no curve point found in 256 attempts");
}

}  // namespace mccls::crypto
