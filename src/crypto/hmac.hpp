// HMAC-SHA256 (RFC 2104 / FIPS 198-1), used by the HMAC-DRBG.
#pragma once

#include <span>

#include "crypto/sha256.hpp"

namespace mccls::crypto {

class HmacSha256 {
 public:
  using Mac = Sha256::Digest;

  explicit HmacSha256(std::span<const std::uint8_t> key);

  void update(std::span<const std::uint8_t> data) { inner_.update(data); }
  Mac finalize();

  static Mac mac(std::span<const std::uint8_t> key, std::span<const std::uint8_t> data) {
    HmacSha256 h(key);
    h.update(data);
    return h.finalize();
  }

 private:
  std::array<std::uint8_t, Sha256::kBlockSize> opad_key_{};
  Sha256 inner_;
};

}  // namespace mccls::crypto
