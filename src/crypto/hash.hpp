// The two random oracles the CLS schemes need:
//   H1 : {0,1}* -> G1   (hash_to_g1, try-and-increment + cofactor clearing)
//   H2 : {0,1}* -> Zq   (hash_to_fq, 512-bit expand then reduce mod q)
// Every call site supplies a domain-separation tag so distinct oracles used
// by one scheme (or by different schemes) never collide.
#pragma once

#include <span>
#include <string_view>

#include "crypto/encoding.hpp"
#include "ec/g1.hpp"
#include "math/fe.hpp"

namespace mccls::crypto {

/// Uniform-ish scalar from a transcript: SHA256(tag||0||data) || SHA256(tag||1||data)
/// interpreted as a 512-bit integer and reduced mod q (bias < 2^-260).
math::Fq hash_to_fq(std::string_view domain, std::span<const std::uint8_t> data);

/// Try-and-increment hash onto the order-q subgroup of E(Fp):
/// x = SHA256-derived field element, lift to the curve, multiply by the
/// cofactor 4. Expected 2 attempts; never returns infinity.
ec::G1 hash_to_g1(std::string_view domain, std::span<const std::uint8_t> data);

/// Convenience transcript builder: hashes a pre-framed ByteWriter payload.
inline math::Fq hash_to_fq(std::string_view domain, const ByteWriter& w) {
  return hash_to_fq(domain, w.bytes());
}
inline ec::G1 hash_to_g1(std::string_view domain, const ByteWriter& w) {
  return hash_to_g1(domain, w.bytes());
}

}  // namespace mccls::crypto
