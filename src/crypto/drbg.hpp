// HMAC-DRBG (NIST SP 800-90A) over SHA-256. Deterministic given the seed,
// which keeps every test, benchmark and simulation in this repository
// reproducible. Also provides uniform sampling of scalar-field elements.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "crypto/hmac.hpp"
#include "math/fe.hpp"

namespace mccls::crypto {

class HmacDrbg {
 public:
  /// Instantiates from arbitrary seed material (entropy || nonce || pers).
  explicit HmacDrbg(std::span<const std::uint8_t> seed);
  /// Convenience: seeds from a 64-bit value (tests / simulations).
  explicit HmacDrbg(std::uint64_t seed);

  /// Fills `out` with pseudorandom bytes.
  void generate(std::span<std::uint8_t> out);
  std::vector<std::uint8_t> generate(std::size_t n);

  /// Mixes additional entropy into the state.
  void reseed(std::span<const std::uint8_t> material);

  /// Uniform scalar in [1, q-1] (rejection-sampled; never zero, as all
  /// scheme secrets/nonces must be invertible).
  math::Fq next_nonzero_fq();

  /// Uniform scalar in [0, q-1].
  math::Fq next_fq();

 private:
  void hmac_update(std::span<const std::uint8_t> provided);

  std::array<std::uint8_t, 32> key_{};
  std::array<std::uint8_t, 32> value_{};
};

}  // namespace mccls::crypto
