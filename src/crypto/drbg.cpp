#include "crypto/drbg.hpp"

#include <cstring>

#include "math/u256.hpp"

namespace mccls::crypto {

using math::U256;

HmacDrbg::HmacDrbg(std::span<const std::uint8_t> seed) {
  key_.fill(0x00);
  value_.fill(0x01);
  hmac_update(seed);
}

HmacDrbg::HmacDrbg(std::uint64_t seed) {
  std::array<std::uint8_t, 8> bytes;
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<std::uint8_t>(seed >> (8 * (7 - i)));
  key_.fill(0x00);
  value_.fill(0x01);
  hmac_update(bytes);
}

void HmacDrbg::hmac_update(std::span<const std::uint8_t> provided) {
  // K = HMAC(K, V || 0x00 || provided); V = HMAC(K, V)
  {
    HmacSha256 h(key_);
    h.update(value_);
    const std::uint8_t zero = 0x00;
    h.update(std::span{&zero, 1});
    h.update(provided);
    key_ = h.finalize();
  }
  value_ = HmacSha256::mac(key_, value_);
  if (provided.empty()) return;
  // K = HMAC(K, V || 0x01 || provided); V = HMAC(K, V)
  {
    HmacSha256 h(key_);
    h.update(value_);
    const std::uint8_t one = 0x01;
    h.update(std::span{&one, 1});
    h.update(provided);
    key_ = h.finalize();
  }
  value_ = HmacSha256::mac(key_, value_);
}

void HmacDrbg::generate(std::span<std::uint8_t> out) {
  std::size_t produced = 0;
  while (produced < out.size()) {
    value_ = HmacSha256::mac(key_, value_);
    const std::size_t take = std::min(value_.size(), out.size() - produced);
    std::memcpy(out.data() + produced, value_.data(), take);
    produced += take;
  }
  hmac_update({});
}

std::vector<std::uint8_t> HmacDrbg::generate(std::size_t n) {
  std::vector<std::uint8_t> out(n);
  generate(out);
  return out;
}

void HmacDrbg::reseed(std::span<const std::uint8_t> material) { hmac_update(material); }

math::Fq HmacDrbg::next_fq() {
  // Rejection sampling, masked to the bit length of q for a high accept rate.
  const unsigned q_bits = math::Fq::modulus().bit_length();
  for (;;) {
    std::array<std::uint8_t, 32> buf;
    generate(buf);
    U256 candidate = U256::from_be_bytes(buf);
    for (unsigned b = q_bits; b < 256; ++b) {
      candidate.w[b / 64] &= ~(std::uint64_t{1} << (b % 64));
    }
    if (cmp(candidate, math::Fq::modulus()) < 0) {
      return math::Fq::from_u256(candidate);
    }
  }
}

math::Fq HmacDrbg::next_nonzero_fq() {
  for (;;) {
    const math::Fq v = next_fq();
    if (!v.is_zero()) return v;
  }
}

}  // namespace mccls::crypto
