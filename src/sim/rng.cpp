#include "sim/rng.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>

namespace mccls::sim {

namespace {

/// splitmix64: seed expander recommended for initializing xoshiro state.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("Rng::uniform_int: n must be > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = n * (~std::uint64_t{0} / n);
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return v % n;
}

double Rng::exponential(double mean) {
  if (mean <= 0) throw std::invalid_argument("Rng::exponential: mean must be > 0");
  double u;
  do {
    u = uniform();
  } while (u <= 0);
  return -mean * std::log(u);
}

Rng Rng::fork(std::uint64_t stream_id) const {
  // Mix the current state with the stream id through splitmix64.
  std::uint64_t x = s_[0] ^ (s_[2] + 0x9e3779b97f4a7c15ULL * (stream_id + 1));
  return Rng(splitmix64(x));
}

Rng Rng::fork(std::string_view name) const {
  // FNV-1a over the name; collisions only weaken stream independence, never
  // reproducibility (the mapping is deterministic either way).
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : name) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return fork(h);
}

}  // namespace mccls::sim
