// Discrete-event simulation core: a time-ordered event queue with stable
// FIFO ordering for simultaneous events, supporting cancellation. This is
// the substrate under the wireless channel, MAC, AODV and traffic layers —
// the role QualNet's kernel plays in the paper's evaluation.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <unordered_set>
#include <vector>

namespace mccls::sim {

/// Simulated time in seconds.
using SimTime = double;

/// Token identifying a scheduled event; usable for cancellation.
using EventId = std::uint64_t;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (must be >= now). Events scheduled
  /// for the same instant run in scheduling order.
  EventId schedule_at(SimTime t, std::function<void()> fn);

  /// Schedules `fn` after `delay` seconds (clamped to >= 0).
  EventId schedule_in(SimTime delay, std::function<void()> fn) {
    return schedule_at(now_ + (delay > 0 ? delay : 0), std::move(fn));
  }

  /// Cancels a pending event; no-op if already fired or cancelled.
  void cancel(EventId id) { cancelled_.insert(id); }

  /// Runs events until the queue empties or simulated time passes `until`.
  /// Events scheduled exactly at `until` still run.
  void run_until(SimTime until);

  /// Runs until the queue is empty.
  void run() { run_until(std::numeric_limits<SimTime>::infinity()); }

  [[nodiscard]] std::size_t pending_events() const { return queue_.size() - cancelled_.size(); }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

 private:
  struct Event {
    SimTime time;
    EventId id;  // doubles as the FIFO tiebreaker
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;
    }
  };

  SimTime now_ = 0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace mccls::sim
