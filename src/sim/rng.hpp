// Deterministic simulation RNG (xoshiro256**), independent of the crypto
// DRBG: simulation randomness (mobility, jitter, traffic) must be cheap and
// reproducible per scenario seed, with forkable substreams so adding a node
// does not perturb every other node's draws.
#pragma once

#include <cstdint>
#include <string_view>

namespace mccls::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Raw 64 random bits.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + uniform() * (hi - lo); }
  /// Uniform integer in [0, n) (n > 0).
  std::uint64_t uniform_int(std::uint64_t n);
  /// Exponentially distributed with the given mean (> 0).
  double exponential(double mean);
  /// Bernoulli trial.
  bool chance(double probability) { return uniform() < probability; }

  /// Derives an independent substream (e.g. one per node).
  [[nodiscard]] Rng fork(std::uint64_t stream_id) const;

  /// Derives an independent substream keyed by a name (FNV-1a of `name` as
  /// the stream id). This is the seed contract the qa harness builds on:
  ///   root stream       = Rng(seed)
  ///   property stream   = root.fork(property_name)
  ///   case stream i     = property_stream.fork(i)
  /// so any single property/iteration pair reproduces from (seed, name, i)
  /// alone, independent of what else ran before it and in what order.
  [[nodiscard]] Rng fork(std::string_view name) const;

 private:
  std::uint64_t s_[4];
};

}  // namespace mccls::sim
