#include "sim/simulator.hpp"

#include <stdexcept>

namespace mccls::sim {

EventId Simulator::schedule_at(SimTime t, std::function<void()> fn) {
  if (t < now_) throw std::invalid_argument("Simulator::schedule_at: time in the past");
  const EventId id = next_id_++;
  queue_.push(Event{t, id, std::move(fn)});
  return id;
}

void Simulator::run_until(SimTime until) {
  while (!queue_.empty() && queue_.top().time <= until) {
    // priority_queue::top is const; move via const_cast is the standard
    // idiom for draining move-only payloads.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    if (const auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = ev.time;
    ++executed_;
    ev.fn();
  }
  if (until != std::numeric_limits<SimTime>::infinity() && now_ < until) now_ = until;
}

}  // namespace mccls::sim
