#include "aodv/messages.hpp"

#include <cmath>

namespace mccls::aodv {

namespace {
// IPv4 (20) + UDP (8) framing for AODV control traffic, per RFC 3561.
constexpr std::size_t kIpUdpHeader = 28;
}  // namespace

crypto::Bytes signable_bytes(const Rreq& rreq) {
  crypto::ByteWriter w;
  w.put_u8(0x01);  // message type tag
  w.put_u32(rreq.rreq_id);
  w.put_u32(rreq.origin);
  w.put_u32(rreq.origin_seq);
  w.put_u32(rreq.dest);
  w.put_u32(rreq.dest_seq);
  w.put_u8(rreq.unknown_dest_seq ? 1 : 0);
  // Same µs rounding as the codec, so a decoded copy re-signs identically.
  w.put_u64(static_cast<std::uint64_t>(std::llround(rreq.issued_at * 1e6)));
  return w.take();
}

crypto::Bytes signable_bytes(const Rrep& rrep) {
  crypto::ByteWriter w;
  w.put_u8(0x02);
  w.put_u32(rrep.origin);
  w.put_u32(rrep.dest);
  w.put_u32(rrep.dest_seq);
  w.put_u32(rrep.replier);
  w.put_u64(static_cast<std::uint64_t>(rrep.lifetime * 1e6));
  return w.take();
}

crypto::Bytes signable_bytes(const Rerr& rerr) {
  crypto::ByteWriter w;
  w.put_u8(0x03);
  w.put_u32(static_cast<std::uint32_t>(rerr.unreachable.size()));
  for (const auto& [dest, seq] : rerr.unreachable) {
    w.put_u32(dest);
    w.put_u32(seq);
  }
  return w.take();
}

crypto::Bytes signable_bytes(const Hello& hello) {
  crypto::ByteWriter w;
  w.put_u8(0x04);
  w.put_u32(hello.node);
  w.put_u32(hello.seq);
  return w.take();
}

std::size_t base_wire_size(const Rreq&) { return kIpUdpHeader + 32; }
std::size_t base_wire_size(const Hello&) { return kIpUdpHeader + 12; }
std::size_t base_wire_size(const Rrep&) { return kIpUdpHeader + 20; }
std::size_t base_wire_size(const Rerr& rerr) {
  return kIpUdpHeader + 4 + 8 * rerr.unreachable.size();
}
std::size_t wire_size(const DataPacket& pkt) { return kIpUdpHeader + pkt.payload_bytes; }

std::size_t wire_size(const AuthExt& auth) {
  // signer id + length-delimited key and signature fields.
  return 4 + 2 + auth.public_key.size() + 2 + auth.signature.size();
}

}  // namespace mccls::aodv
