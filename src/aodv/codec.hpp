// Binary wire codec for AODV packets (control messages, data headers and
// auth extensions): a canonical, versioned encoding used to export/import
// packets across process boundaries (the CLI tool, packet dumps, tests).
// Inside the simulator frames travel as in-memory payloads; this codec is
// the boundary format.
//
// All decoders are total: malformed, truncated or trailing-garbage inputs
// yield nullopt, never UB or exceptions.
#pragma once

#include <optional>

#include "aodv/agent.hpp"

namespace mccls::aodv {

/// Serializes any AODV payload (1-byte type tag + fields + auth extensions).
crypto::Bytes encode_packet(const AodvPayload& payload);

/// Inverse of encode_packet; rejects unknown tags, truncation and trailing
/// bytes.
std::optional<AodvPayload> decode_packet(std::span<const std::uint8_t> bytes);

}  // namespace mccls::aodv
