#include "aodv/agent.hpp"

#include <algorithm>

namespace mccls::aodv {

namespace {
/// Fresher-than comparison with sequence-number wraparound (RFC 3561 §6.1).
bool seq_newer_or_equal(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) >= 0;
}
}  // namespace

AodvAgent::AodvAgent(sim::Simulator& simulator, net::Channel& channel, NodeId id,
                     const AodvConfig& config, sim::Rng rng, Metrics& metrics,
                     SecurityProvider* security, AttackType attack)
    : sim_(simulator),
      channel_(channel),
      id_(id),
      cfg_(config),
      rng_(rng),
      metrics_(metrics),
      security_(security),
      attack_(attack),
      table_(config.active_route_timeout) {
  channel_.attach(id_, this);
  if (attack_ == AttackType::kRushing) channel_.set_zero_backoff(id_, true);
  if (attack_ == AttackType::kWormhole) {
    channel_.set_promiscuous(id_, true);
    channel_.set_zero_backoff(id_, true);
  }
  // Wormholes are transparent repeaters: they never speak with their own
  // voice, so no beacons (everyone else participates in HELLO).
  if (cfg_.use_hello && attack_ != AttackType::kWormhole) {
    sim_.schedule_in(rng_.uniform(0, cfg_.hello_interval), [this] { hello_tick(); });
  }
  if (attack_ == AttackType::kSybil && cfg_.use_hello && cfg_.sybil_pool > 0) {
    sim_.schedule_in(rng_.uniform(0, cfg_.hello_interval), [this] { sybil_hello_tick(); });
  }
  if (attack_ == AttackType::kReplayStorm && cfg_.replay_storm_interval > 0) {
    sim_.schedule_in(rng_.uniform(0, cfg_.replay_storm_interval),
                     [this] { replay_storm_tick(); });
  }
}

// ------------------------------------------- local connectivity (HELLO)

void AodvAgent::note_alive(NodeId neighbor) { last_heard_[neighbor] = sim_.now(); }

void AodvAgent::hello_tick() {
  // Beacon.
  Hello hello{.node = id_, .seq = ++hello_seq_};
  double latency = 0;
  if (security_ != nullptr) {
    ++metrics_.sign_ops;
    hello.origin_auth = security_->sign(id_, signable_bytes(hello));
    latency += sign_latency();
  }
  const std::size_t bytes =
      base_wire_size(hello) + (hello.origin_auth ? wire_size(*hello.origin_auth) : 0);
  sim_.schedule_in(latency, [this, hello = std::move(hello), bytes] {
    channel_.broadcast(id_, bytes, AodvPayload{hello});
  });

  // Liveness check: declare links broken after allowed_hello_loss silent
  // intervals and advertise the loss (RFC 3561 §6.9 / §6.11).
  const sim::SimTime deadline =
      sim_.now() - cfg_.allowed_hello_loss * cfg_.hello_interval;
  std::vector<std::pair<NodeId, std::uint32_t>> lost;
  for (const NodeId hop : table_.active_next_hops(sim_.now())) {
    const auto it = last_heard_.find(hop);
    if (it != last_heard_.end() && it->second >= deadline) continue;
    auto affected = table_.invalidate_via(hop);
    lost.insert(lost.end(), affected.begin(), affected.end());
  }
  if (!lost.empty()) send_rerr(std::move(lost));

  sim_.schedule_in(cfg_.hello_interval * rng_.uniform(0.95, 1.05),
                   [this] { hello_tick(); });
}

// --------------------------------------------------------------- security

double AodvAgent::sign_latency() const {
  return security_ != nullptr ? security_->costs().sign_delay : 0.0;
}

double AodvAgent::verify_latency(int signatures) const {
  return security_ != nullptr ? signatures * security_->costs().verify_delay : 0.0;
}

bool AodvAgent::authenticate(const std::optional<AuthExt>& origin_auth,
                             const std::optional<AuthExt>& hop_auth,
                             std::span<const std::uint8_t> signable) {
  if (security_ == nullptr) return true;
  if (!origin_auth || !hop_auth) {
    ++metrics_.auth_rejected;
    return false;
  }
  metrics_.verify_ops += 2;
  if (!security_->verify(*origin_auth, signable) || !security_->verify(*hop_auth, signable)) {
    ++metrics_.auth_rejected;
    return false;
  }
  return true;
}

std::size_t AodvAgent::auth_overhead(const std::optional<AuthExt>& a,
                                     const std::optional<AuthExt>& b) const {
  std::size_t n = 0;
  if (a) n += wire_size(*a);
  if (b) n += wire_size(*b);
  return n;
}

// -------------------------------------------------------------- dispatch

void AodvAgent::on_frame(const net::Frame& frame) {
  const auto* payload = std::any_cast<AodvPayload>(&frame.payload);
  if (payload == nullptr) return;
  const NodeId from = frame.from;

  if (attack_ == AttackType::kWormhole) {
    wormhole_relay(frame);
    return;
  }
  note_alive(from);  // any frame proves the link is up

  if (const auto* hello = std::get_if<Hello>(&payload->msg)) {
    if (attack_ == AttackType::kBlackHole || attack_ == AttackType::kRushing ||
        attack_ == AttackType::kSybil || attack_ == AttackType::kReplayStorm) {
      return;  // outsider attackers ignore beacons
    }
    if (security_ != nullptr) {
      ++metrics_.verify_ops;
      Hello copy = *hello;
      sim_.schedule_in(verify_latency(1), [this, copy = std::move(copy), from] {
        if (!copy.origin_auth || copy.origin_auth->signer != from || copy.node != from ||
            !security_->verify(*copy.origin_auth, signable_bytes(copy))) {
          ++metrics_.auth_rejected;
          return;
        }
        table_.touch_neighbor(from, sim_.now());
      });
    } else {
      table_.touch_neighbor(from, sim_.now());
    }
    return;
  }
  if (const auto* data = std::get_if<DataPacket>(&payload->msg)) {
    handle_data(*data, from);
    return;
  }
  if (const auto* rreq = std::get_if<Rreq>(&payload->msg)) {
    // Attackers act on the raw packet immediately (they skip verification —
    // speed is their whole game).
    if (attack_ == AttackType::kBlackHole) {
      if (rreq->origin != id_ && rreq->dest != id_ &&
          !already_seen(rreq->origin, rreq->rreq_id)) {
        black_hole_reply(*rreq, from);
      }
      return;
    }
    if (attack_ == AttackType::kSybil) {
      if (rreq->origin != id_ && rreq->dest != id_ &&
          !already_seen(rreq->origin, rreq->rreq_id)) {
        sybil_reply(*rreq, from);
      }
      return;
    }
    if (attack_ == AttackType::kReplayStorm) {
      // Harvest raw floods for later refloods; never forward honestly.
      if (rreq->origin != id_ && replay_log_.size() < cfg_.replay_record_cap) {
        replay_log_.emplace_back(*rreq, from);
      }
      return;
    }
    if (attack_ == AttackType::kRushing) {
      if (rreq->origin != id_ && !already_seen(rreq->origin, rreq->rreq_id)) {
        table_.touch_neighbor(from, sim_.now());
        Route reverse{.next_hop = from,
                      .hop_count = static_cast<std::uint8_t>(rreq->hop_count + 1),
                      .seq = rreq->origin_seq,
                      .valid_seq = true};
        table_.offer(rreq->origin, reverse, sim_.now());
        forward_rreq(*rreq);  // zero jitter: forward_rreq checks attack_
        // Tunnel the request to every colluder; rushed copies then erupt
        // from far-away points of the field near-instantly.
        for (AodvAgent* peer : collusion_peers_) {
          sim_.schedule_in(1e-4, [peer, copy = *rreq, me = id_]() mutable {
            peer->on_tunneled_rreq(std::move(copy), me);
          });
        }
      }
      return;
    }
    // Honest node: verify (with CPU cost) then process. Binding rules: the
    // origin signature must come from the claimed originator and the hop
    // signature from the node that actually transmitted the frame —
    // otherwise an attacker could rush a packet while replaying the previous
    // hop's still-valid signature.
    Rreq copy = *rreq;
    const double delay = verify_latency(2);
    sim_.schedule_in(delay, [this, copy = std::move(copy), from]() mutable {
      // Replay defense, checked before the (costlier) signature work: the
      // origination timestamp is covered by the origin signature, so a
      // replayer cannot refresh it — stale floods die here. Only meaningful
      // when secured; an unsigned timestamp is trivially forgeable.
      if (security_ != nullptr && cfg_.rreq_freshness > 0 &&
          sim_.now() - copy.issued_at > cfg_.rreq_freshness) {
        ++metrics_.replay_rejected;
        return;
      }
      if (security_ != nullptr && copy.origin_auth && copy.hop_auth &&
          (copy.origin_auth->signer != copy.origin || copy.hop_auth->signer != from)) {
        ++metrics_.auth_rejected;
        return;
      }
      if (!authenticate(copy.origin_auth, copy.hop_auth, signable_bytes(copy))) return;
      handle_rreq(std::move(copy), from);
    });
    return;
  }
  if (const auto* rrep = std::get_if<Rrep>(&payload->msg)) {
    if (attack_ == AttackType::kReplayStorm) return;  // pure flooder
    if (attack_ == AttackType::kBlackHole || attack_ == AttackType::kRushing ||
        attack_ == AttackType::kSybil) {
      // Outsider attackers forward RREPs to insert themselves onto paths.
      Rrep copy = *rrep;
      handle_rrep(std::move(copy), from);
      return;
    }
    Rrep copy = *rrep;
    sim_.schedule_in(verify_latency(2), [this, copy = std::move(copy), from]() mutable {
      if (security_ != nullptr && copy.origin_auth && copy.hop_auth &&
          (copy.origin_auth->signer != copy.replier || copy.hop_auth->signer != from)) {
        ++metrics_.auth_rejected;
        return;
      }
      if (!authenticate(copy.origin_auth, copy.hop_auth, signable_bytes(copy))) return;
      handle_rrep(std::move(copy), from);
    });
    return;
  }
  if (const auto* rerr = std::get_if<Rerr>(&payload->msg)) {
    if (attack_ == AttackType::kBlackHole || attack_ == AttackType::kRushing ||
        attack_ == AttackType::kSybil || attack_ == AttackType::kReplayStorm) {
      return;  // outsider attackers ignore RERRs
    }
    Rerr copy = *rerr;
    sim_.schedule_in(verify_latency(1), [this, copy = std::move(copy), from] {
      if (security_ != nullptr) {
        ++metrics_.verify_ops;
        if (!copy.origin_auth || !security_->verify(*copy.origin_auth, signable_bytes(copy))) {
          ++metrics_.auth_rejected;
          return;
        }
      }
      handle_rerr(copy, from);
    });
    return;
  }
}

// -------------------------------------------------------------- wormhole

void AodvAgent::wormhole_relay(const net::Frame& frame) {
  // Absorb transit data that honest nodes mistakenly hand to us.
  if (const auto* payload = std::any_cast<AodvPayload>(&frame.payload)) {
    if (const auto* data = std::get_if<DataPacket>(&payload->msg)) {
      if (frame.to == id_ && data->dst != id_) ++metrics_.attacker_dropped;
      return;
    }
    // Tunnel broadcast control traffic to every colluder, who replays it
    // verbatim with the ORIGINAL transmitter spoofed — the signatures stay
    // genuine, so no verifier can object. Dedup by flood identity to avoid
    // replay ping-pong between endpoints.
    std::uint64_t key = 0;
    if (const auto* rreq = std::get_if<Rreq>(&payload->msg)) {
      key = (std::uint64_t{1} << 60) | (static_cast<std::uint64_t>(rreq->origin) << 28) |
            rreq->rreq_id;
    } else if (const auto* hello = std::get_if<Hello>(&payload->msg)) {
      key = (std::uint64_t{2} << 60) | (static_cast<std::uint64_t>(hello->node) << 28) |
            hello->seq;
    } else {
      return;  // RREPs/RERRs are unicast chains; replaying them breaks nothing
    }
    if (!tunneled_.insert(key).second) return;
    if (tunneled_.size() > 4096) tunneled_.clear();
    for (AodvAgent* peer : collusion_peers_) {
      sim_.schedule_in(1e-4, [peer, claimed = frame.from, bytes = frame.bytes,
                              payload_copy = frame.payload, key] {
        if (!peer->tunneled_.insert(key).second) return;
        peer->channel_.broadcast_as(peer->id_, claimed, bytes, payload_copy);
      });
    }
  }
}

// --------------------------------------------- collusion tunnel (rushing)

void AodvAgent::set_collusion_peers(std::vector<AodvAgent*> peers) {
  collusion_peers_ = std::move(peers);
}

AodvAgent* AodvAgent::peer_by_id(NodeId id) const {
  for (AodvAgent* peer : collusion_peers_) {
    if (peer->id() == id) return peer;
  }
  return nullptr;
}

void AodvAgent::on_tunneled_rreq(Rreq rreq, NodeId from_peer) {
  if (rreq.origin == id_ || already_seen(rreq.origin, rreq.rreq_id)) return;
  // Reverse route through the tunnel partner (radio-unreachable; RREPs are
  // tunneled back the same way).
  Route reverse{.next_hop = from_peer,
                .hop_count = static_cast<std::uint8_t>(rreq.hop_count + 1),
                .seq = rreq.origin_seq,
                .valid_seq = true};
  table_.offer(rreq.origin, reverse, sim_.now());
  forward_rreq(std::move(rreq));
}

void AodvAgent::on_tunneled_rrep(Rrep rrep, NodeId from_peer) {
  handle_rrep(std::move(rrep), from_peer);
}

// ------------------------------------------------------------------ RREQ

bool AodvAgent::already_seen(NodeId origin, std::uint32_t rreq_id) {
  const std::uint64_t key = (static_cast<std::uint64_t>(origin) << 32) | rreq_id;
  const sim::SimTime now = sim_.now();
  if (seen_rreqs_.size() > 512) {
    std::erase_if(seen_rreqs_, [now](const auto& kv) { return kv.second <= now; });
  }
  const auto [it, inserted] = seen_rreqs_.try_emplace(key, now + cfg_.path_discovery_time);
  if (!inserted) {
    if (it->second > now) return true;
    it->second = now + cfg_.path_discovery_time;
  }
  return false;
}

void AodvAgent::handle_rreq(Rreq rreq, NodeId from) {
  if (rreq.origin == id_) return;            // own flood echoed back
  if (already_seen(rreq.origin, rreq.rreq_id)) return;

  const sim::SimTime now = sim_.now();
  table_.touch_neighbor(from, now);
  Route reverse{.next_hop = from,
                .hop_count = static_cast<std::uint8_t>(rreq.hop_count + 1),
                .seq = rreq.origin_seq,
                .valid_seq = true};
  table_.offer(rreq.origin, reverse, now);

  if (rreq.dest == id_) {
    reply_as_destination(rreq, from);
    return;
  }
  if (const Route* route = table_.find_active(rreq.dest, now);
      route != nullptr && route->valid_seq &&
      (rreq.unknown_dest_seq || seq_newer_or_equal(route->seq, rreq.dest_seq))) {
    reply_as_intermediate(rreq, *route, from);
    return;
  }
  forward_rreq(std::move(rreq));
}

void AodvAgent::forward_rreq(Rreq rreq) {
  if (rreq.ttl <= 1) return;
  --rreq.ttl;
  ++rreq.hop_count;
  ++metrics_.rreq_forwarded;

  double latency = 0;
  if (security_ != nullptr) {
    ++metrics_.sign_ops;
    rreq.hop_auth = security_->sign(id_, signable_bytes(rreq));
    latency += sign_latency();
  }
  // Honest nodes add rebroadcast jitter to de-synchronize the flood; the
  // rushing attacker's entire edge is skipping exactly this.
  if (attack_ != AttackType::kRushing) {
    latency += rng_.uniform(0, cfg_.forward_jitter_max);
  }
  const std::size_t bytes = base_wire_size(rreq) + auth_overhead(rreq.origin_auth, rreq.hop_auth);
  sim_.schedule_in(latency, [this, rreq = std::move(rreq), bytes] {
    channel_.broadcast(id_, bytes, AodvPayload{rreq});
  });
}

void AodvAgent::reply_as_destination(const Rreq& rreq, NodeId reverse_hop) {
  // RFC 3561 §6.6.1: bump our sequence number to at least the requested one.
  if (!rreq.unknown_dest_seq && seq_newer_or_equal(rreq.dest_seq, seq_)) seq_ = rreq.dest_seq;
  ++seq_;
  ++metrics_.rrep_generated;
  Rrep rrep{.origin = rreq.origin,
            .dest = id_,
            .dest_seq = seq_,
            .replier = id_,
            .hop_count = 0,
            .lifetime = cfg_.rrep_lifetime};
  send_rrep(std::move(rrep), reverse_hop, /*forwarded=*/false);
}

void AodvAgent::reply_as_intermediate(const Rreq& rreq, const Route& route,
                                      NodeId reverse_hop) {
  ++metrics_.rrep_generated;
  Rrep rrep{.origin = rreq.origin,
            .dest = rreq.dest,
            .dest_seq = route.seq,
            .replier = id_,
            .hop_count = route.hop_count,
            .lifetime = cfg_.rrep_lifetime};
  send_rrep(std::move(rrep), reverse_hop, /*forwarded=*/false);

  if (cfg_.gratuitous_rrep) {
    // RFC 3561 §6.6.3: tell the destination about the route back to the
    // originator (roles flipped; travels along our cached forward route).
    ++metrics_.rrep_generated;
    Rrep gratuitous{.origin = rreq.dest,
                    .dest = rreq.origin,
                    .dest_seq = rreq.origin_seq,
                    .replier = id_,
                    .hop_count = static_cast<std::uint8_t>(rreq.hop_count + 1),
                    .lifetime = cfg_.rrep_lifetime};
    send_rrep(std::move(gratuitous), route.next_hop, /*forwarded=*/false);
  }
}

void AodvAgent::black_hole_reply(const Rreq& rreq, NodeId reverse_hop) {
  // Marti et al. [8]: claim a fresh one-hop route so the origin adopts us as
  // next hop, then absorb the data that follows. The claimed seq is just
  // fresh enough to beat the request; a genuine RREP with a newer seq can
  // later reclaim the route, so capture is a race, not a lock-in.
  Rrep rrep{.origin = rreq.origin,
            .dest = rreq.dest,
            .dest_seq = rreq.dest_seq + 1,
            .replier = id_,
            .hop_count = 1,
            .lifetime = cfg_.rrep_lifetime};
  ++metrics_.rrep_generated;
  send_rrep(std::move(rrep), reverse_hop, /*forwarded=*/false);
}

// ------------------------------------------------- sybil / replay-storm

NodeId AodvAgent::sybil_identity(std::size_t k) const {
  // Well above any real node id; distinct pools per attacker.
  return 0x10000u + static_cast<NodeId>(id_) * 64u + static_cast<NodeId>(k);
}

void AodvAgent::sybil_reply(const Rreq& rreq, NodeId reverse_hop) {
  // Black-hole bait under a fabricated identity: the RREP claims a fresh
  // one-hop route via a node that does not exist, but the data still flows
  // to the attacker (the frame's physical source is us, so receivers adopt
  // us as next hop). Both signatures bind correctly — origin to the claimed
  // replier, hop to the transmitter — but neither identity is enrolled, so
  // secured verifiers reject on the crypto itself: KGC admission at work.
  const NodeId fake = sybil_identity(sybil_cursor_++ % cfg_.sybil_pool);
  Rrep rrep{.origin = rreq.origin,
            .dest = rreq.dest,
            .dest_seq = rreq.dest_seq + 1,
            .replier = fake,
            .hop_count = 1,
            .lifetime = cfg_.rrep_lifetime};
  ++metrics_.rrep_generated;
  if (security_ != nullptr) {
    rrep.origin_auth = security_->sign(fake, signable_bytes(rrep));
    rrep.hop_auth = security_->sign(id_, signable_bytes(rrep));
  }
  const std::size_t bytes =
      base_wire_size(rrep) + auth_overhead(rrep.origin_auth, rrep.hop_auth);
  channel_.unicast(id_, reverse_hop, bytes, AodvPayload{rrep});
}

void AodvAgent::sybil_hello_tick() {
  // Beacon one fabricated identity per interval (round-robin through the
  // pool), polluting unsecured neighbor tables with phantom nodes.
  const NodeId fake = sybil_identity(hello_seq_ % cfg_.sybil_pool);
  Hello hello{.node = fake, .seq = ++sybil_seq_};
  if (security_ != nullptr) {
    hello.origin_auth = security_->sign(fake, signable_bytes(hello));
  }
  const std::size_t bytes =
      base_wire_size(hello) + (hello.origin_auth ? wire_size(*hello.origin_auth) : 0);
  channel_.broadcast_as(id_, fake, bytes, AodvPayload{hello});
  sim_.schedule_in(cfg_.hello_interval * rng_.uniform(0.95, 1.05),
                   [this] { sybil_hello_tick(); });
}

void AodvAgent::replay_storm_tick() {
  for (const auto& [recorded, orig_from] : replay_log_) {
    // Verbatim reflood with the original transmitter spoofed: every
    // signature is genuine and correctly bound, so only the signed
    // origination timestamp betrays it once stale. Unsecured networks
    // re-flood whenever the RREQ-id dedup entry has expired.
    const std::size_t bytes =
        base_wire_size(recorded) + auth_overhead(recorded.origin_auth, recorded.hop_auth);
    channel_.broadcast_as(id_, orig_from, bytes, AodvPayload{recorded});
    // Id-mutated copies defeat duplicate suppression outright. Secured
    // networks reject them on the origin signature (rreq_id is signed);
    // unsecured networks eat a fresh flood per copy per burst.
    for (int c = 0; c < cfg_.replay_copies; ++c) {
      Rreq mutated = recorded;
      mutated.rreq_id += 0x40000000u + ++replay_mutation_;
      channel_.broadcast_as(id_, orig_from, bytes, AodvPayload{mutated});
    }
  }
  sim_.schedule_in(cfg_.replay_storm_interval * rng_.uniform(0.95, 1.05),
                   [this] { replay_storm_tick(); });
}

void AodvAgent::send_rrep(Rrep rrep, NodeId next_hop, bool forwarded) {
  // Colluding rushers move RREPs over their out-of-band tunnel.
  if (AodvAgent* peer = peer_by_id(next_hop); peer != nullptr) {
    ++rrep.hop_count;
    sim_.schedule_in(1e-4, [peer, rrep = std::move(rrep), me = id_]() mutable {
      peer->on_tunneled_rrep(std::move(rrep), me);
    });
    return;
  }
  double latency = 0;
  if (security_ != nullptr) {
    if (forwarded) {
      ++metrics_.sign_ops;
      rrep.hop_auth = security_->sign(id_, signable_bytes(rrep));
      latency += sign_latency();
    } else {
      // Fresh reply: one signature serves as both origin and hop auth.
      ++metrics_.sign_ops;
      rrep.origin_auth = security_->sign(id_, signable_bytes(rrep));
      rrep.hop_auth = rrep.origin_auth;
      latency += sign_latency();
    }
  }
  const std::size_t bytes = base_wire_size(rrep) + auth_overhead(rrep.origin_auth, rrep.hop_auth);
  sim_.schedule_in(latency, [this, rrep = std::move(rrep), next_hop, bytes] {
    channel_.unicast(id_, next_hop, bytes, AodvPayload{rrep},
                     [this, next_hop](bool ok) {
                       if (ok) {
                         note_alive(next_hop);  // MAC ACK proves the link
                       } else if (cfg_.link_layer_feedback) {
                         on_link_break(next_hop);
                       }
                     });
  });
}

// ------------------------------------------------------------------ RREP

void AodvAgent::handle_rrep(Rrep rrep, NodeId from) {
  const sim::SimTime now = sim_.now();
  table_.touch_neighbor(from, now);
  Route forward{.next_hop = from,
                .hop_count = static_cast<std::uint8_t>(rrep.hop_count + 1),
                .seq = rrep.dest_seq,
                .valid_seq = true};
  table_.offer(rrep.dest, forward, now);

  if (rrep.origin == id_) {
    // Discovery complete (or black-hole bait swallowed — we cannot tell).
    if (const auto it = pending_.find(rrep.dest); it != pending_.end()) {
      sim_.cancel(it->second.timeout);
      pending_.erase(it);
    }
    flush_buffer(rrep.dest);
    return;
  }
  // Forward along the reverse path toward the discovery originator.
  const Route* route = table_.find_active(rrep.origin, now);
  if (route == nullptr) return;
  ++rrep.hop_count;
  ++metrics_.rrep_forwarded;
  table_.refresh(rrep.origin, now);
  send_rrep(std::move(rrep), route->next_hop, /*forwarded=*/true);
}

// ------------------------------------------------------------------ RERR

void AodvAgent::send_rerr(std::vector<std::pair<NodeId, std::uint32_t>> unreachable) {
  if (unreachable.empty()) return;
  ++metrics_.rerr_sent;
  Rerr rerr{.unreachable = std::move(unreachable), .origin_auth = std::nullopt};
  double latency = 0;
  if (security_ != nullptr) {
    ++metrics_.sign_ops;
    rerr.origin_auth = security_->sign(id_, signable_bytes(rerr));
    latency += sign_latency();
  }
  const std::size_t bytes =
      base_wire_size(rerr) + (rerr.origin_auth ? wire_size(*rerr.origin_auth) : 0);
  sim_.schedule_in(latency, [this, rerr = std::move(rerr), bytes] {
    channel_.broadcast(id_, bytes, AodvPayload{rerr});
  });
}

void AodvAgent::handle_rerr(const Rerr& rerr, NodeId from) {
  std::vector<std::pair<NodeId, std::uint32_t>> propagate;
  for (const auto& [dest, seq] : rerr.unreachable) {
    if (Route* route = table_.find(dest);
        route != nullptr && route->valid && route->next_hop == from) {
      table_.invalidate(dest);
      propagate.emplace_back(dest, route->seq);
    }
  }
  if (!propagate.empty()) send_rerr(std::move(propagate));
}

void AodvAgent::on_link_break(NodeId next_hop) {
  auto affected = table_.invalidate_via(next_hop);
  send_rerr(std::move(affected));
}

// ------------------------------------------------------------------ data

void AodvAgent::send_data(NodeId dst, std::size_t payload_bytes) {
  ++metrics_.data_sent;
  const DataPacket pkt{.src = id_,
                       .dst = dst,
                       .seq = next_data_seq_++,
                       .sent_at = sim_.now(),
                       .payload_bytes = payload_bytes};
  forward_data(pkt, /*at_origin=*/true);
}

void AodvAgent::handle_data(const DataPacket& pkt, NodeId from) {
  table_.touch_neighbor(from, sim_.now());
  if (pkt.dst != id_) {
    if (attack_ == AttackType::kBlackHole || attack_ == AttackType::kRushing ||
        attack_ == AttackType::kSybil || attack_ == AttackType::kReplayStorm) {
      // The outsider attack payoff: silently absorb transit traffic.
      ++metrics_.attacker_dropped;
      return;
    }
    if (attack_ == AttackType::kGrayHole && rng_.chance(kGrayHoleDropProbability)) {
      // Insider selective forwarding: drop a fraction, forward the rest —
      // indistinguishable from lossy links to any signature check.
      ++metrics_.attacker_dropped;
      return;
    }
  }
  if (pkt.dst == id_) {
    ++metrics_.data_delivered;
    metrics_.total_delay += sim_.now() - pkt.sent_at;
    ++metrics_.delay_samples;
    return;
  }
  ++metrics_.data_forwarded;
  forward_data(pkt, /*at_origin=*/false);
}

void AodvAgent::forward_data(const DataPacket& pkt, bool at_origin) {
  const sim::SimTime now = sim_.now();
  const Route* route = table_.find_active(pkt.dst, now);
  if (route == nullptr) {
    if (at_origin) {
      auto& q = buffer_[pkt.dst];
      q.push_back(pkt);
      if (q.size() > cfg_.buffer_capacity) {
        q.pop_front();
        ++metrics_.buffer_drops;
      }
      originate_discovery(pkt.dst);
    } else {
      ++metrics_.no_route_drops;
      send_rerr({{pkt.dst, 0}});
    }
    return;
  }
  table_.refresh(pkt.dst, now);
  table_.refresh(route->next_hop, now);
  const NodeId next_hop = route->next_hop;
  channel_.unicast(id_, next_hop, wire_size(pkt), AodvPayload{pkt},
                   [this, next_hop](bool ok) {
                     if (ok) {
                       note_alive(next_hop);  // MAC ACK proves the link
                       return;
                     }
                     ++metrics_.link_fail_drops;
                     if (cfg_.link_layer_feedback) on_link_break(next_hop);
                   });
}

void AodvAgent::flush_buffer(NodeId dst) {
  const auto it = buffer_.find(dst);
  if (it == buffer_.end()) return;
  std::deque<DataPacket> queued = std::move(it->second);
  buffer_.erase(it);
  for (const auto& pkt : queued) forward_data(pkt, /*at_origin=*/true);
}

void AodvAgent::abandon_discovery(NodeId dst) {
  pending_.erase(dst);
  const auto it = buffer_.find(dst);
  if (it == buffer_.end()) return;
  metrics_.buffer_drops += it->second.size();
  buffer_.erase(it);
}

// ------------------------------------------------------------- discovery

std::uint8_t AodvAgent::initial_rreq_ttl() const {
  return cfg_.expanding_ring ? cfg_.ttl_start : cfg_.net_diameter;
}

void AodvAgent::originate_discovery(NodeId dst) {
  if (pending_.contains(dst)) return;  // discovery already in flight
  pending_[dst] = Discovery{};
  send_rreq(dst, 0, initial_rreq_ttl());
}

void AodvAgent::send_rreq(NodeId dst, int attempt, std::uint8_t ttl) {
  if (attempt == 0) {
    ++metrics_.rreq_initiated;
  } else {
    ++metrics_.rreq_retries;
  }
  ++seq_;
  Rreq rreq{.rreq_id = next_rreq_id_++,
            .origin = id_,
            .origin_seq = seq_,
            .dest = dst,
            .dest_seq = 0,
            .unknown_dest_seq = true,
            .issued_at = sim_.now(),
            .hop_count = 0,
            .ttl = ttl};
  if (const Route* stale = table_.find(dst); stale != nullptr && stale->valid_seq) {
    rreq.dest_seq = stale->seq;
    rreq.unknown_dest_seq = false;
  }
  already_seen(id_, rreq.rreq_id);  // suppress our own echoes

  double latency = 0;
  if (security_ != nullptr) {
    ++metrics_.sign_ops;
    rreq.origin_auth = security_->sign(id_, signable_bytes(rreq));
    rreq.hop_auth = rreq.origin_auth;  // origin is also the first hop
    latency += sign_latency();
  }
  const std::size_t bytes = base_wire_size(rreq) + auth_overhead(rreq.origin_auth, rreq.hop_auth);
  sim_.schedule_in(latency, [this, rreq = std::move(rreq), bytes] {
    channel_.broadcast(id_, bytes, AodvPayload{rreq});
  });

  // Timeout policy: ring-scaled while expanding (RFC 3561 §6.4:
  // RING_TRAVERSAL_TIME), binary exponential backoff across full floods
  // (§6.3 — the backoff exponent counts flood attempts, not ring probes).
  const bool at_full_flood = ttl >= cfg_.net_diameter;
  auto& disc = pending_[dst];
  disc.attempt = attempt;
  if (at_full_flood) ++disc.full_floods;
  const double timeout =
      at_full_flood
          ? cfg_.net_traversal_time *
                static_cast<double>(1 << std::min(disc.full_floods - 1, 8))
          : 2.0 * cfg_.node_traversal_time * (ttl + 2.0);
  disc.timeout = sim_.schedule_in(timeout, [this, dst, attempt, ttl, at_full_flood] {
    const auto it = pending_.find(dst);
    if (it == pending_.end()) return;  // resolved meanwhile
    if (at_full_flood && it->second.full_floods > cfg_.rreq_retries) {
      abandon_discovery(dst);
      return;
    }
    // Grow the ring (threshold jumps straight to a network-wide flood).
    std::uint8_t next_ttl = ttl;
    if (cfg_.expanding_ring && !at_full_flood) {
      next_ttl = static_cast<std::uint8_t>(ttl + cfg_.ttl_increment);
      if (next_ttl > cfg_.ttl_threshold) next_ttl = cfg_.net_diameter;
    }
    send_rreq(dst, attempt + 1, next_ttl);
  });
}

}  // namespace mccls::aodv
