#include "aodv/traffic.hpp"

#include <cstdint>
#include <stdexcept>

namespace mccls::aodv {

namespace {

// Packet k of a flow fires at start + k*interval, computed from the integer
// tick index each time — no accumulated floating-point drift over long runs —
// and each tick schedules only its successor, so a flow costs O(1) heap
// closures at any instant instead of O(duration/interval) at setup.
void schedule_tick(sim::Simulator& simulator, std::vector<std::unique_ptr<AodvAgent>>& agents,
                   const CbrFlow& flow, std::uint64_t tick) {
  const sim::SimTime t = flow.start + static_cast<double>(tick) * flow.interval;
  if (t >= flow.stop) return;
  simulator.schedule_at(t, [&simulator, &agents, flow, tick] {
    agents[flow.src]->send_data(flow.dst, flow.payload_bytes);
    schedule_tick(simulator, agents, flow, tick + 1);
  });
}

}  // namespace

void install_flow(sim::Simulator& simulator, std::vector<std::unique_ptr<AodvAgent>>& agents,
                  const CbrFlow& flow) {
  if (flow.src >= agents.size() || flow.dst >= agents.size() || flow.src == flow.dst) {
    throw std::invalid_argument("install_flow: bad endpoints");
  }
  if (flow.interval <= 0) throw std::invalid_argument("install_flow: bad interval");
  schedule_tick(simulator, agents, flow, 0);
}

}  // namespace mccls::aodv
