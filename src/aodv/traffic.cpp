#include "aodv/traffic.hpp"

#include <stdexcept>

namespace mccls::aodv {

void install_flow(sim::Simulator& simulator, std::vector<std::unique_ptr<AodvAgent>>& agents,
                  const CbrFlow& flow) {
  if (flow.src >= agents.size() || flow.dst >= agents.size() || flow.src == flow.dst) {
    throw std::invalid_argument("install_flow: bad endpoints");
  }
  if (flow.interval <= 0) throw std::invalid_argument("install_flow: bad interval");
  for (sim::SimTime t = flow.start; t < flow.stop; t += flow.interval) {
    simulator.schedule_at(t, [&agents, flow] {
      agents[flow.src]->send_data(flow.dst, flow.payload_bytes);
    });
  }
}

}  // namespace mccls::aodv
