#include "aodv/routing_table.hpp"

#include <algorithm>

namespace mccls::aodv {

Route* RoutingTable::find_active(NodeId dest, sim::SimTime now) {
  const auto it = routes_.find(dest);
  if (it == routes_.end()) return nullptr;
  Route& r = it->second;
  if (!r.valid) return nullptr;
  if (r.expires <= now) {
    r.valid = false;  // lazy expiry
    return nullptr;
  }
  return &r;
}

const Route* RoutingTable::find_active(NodeId dest, sim::SimTime now) const {
  return const_cast<RoutingTable*>(this)->find_active(dest, now);
}

Route* RoutingTable::find(NodeId dest) {
  const auto it = routes_.find(dest);
  return it == routes_.end() ? nullptr : &it->second;
}

bool RoutingTable::offer(NodeId dest, const Route& candidate, sim::SimTime now) {
  Route fresh = candidate;
  fresh.valid = true;
  if (fresh.expires <= now) fresh.expires = now + active_route_timeout_;

  auto [it, inserted] = routes_.try_emplace(dest, fresh);
  if (inserted) return true;

  Route& current = it->second;
  const bool adopt = !current.valid || !current.valid_seq ||
                     (fresh.valid_seq && static_cast<std::int32_t>(fresh.seq - current.seq) > 0) ||
                     (fresh.valid_seq && fresh.seq == current.seq &&
                      fresh.hop_count < current.hop_count);
  if (!adopt) return false;
  current = fresh;
  return true;
}

void RoutingTable::touch_neighbor(NodeId neighbor, sim::SimTime now) {
  Route r;
  r.next_hop = neighbor;
  r.hop_count = 1;
  r.valid_seq = false;  // neighbour seq unknown from overhearing
  r.expires = now + active_route_timeout_;
  auto [it, inserted] = routes_.try_emplace(neighbor, r);
  if (!inserted) {
    Route& current = it->second;
    if (!current.valid || current.hop_count >= 1) {
      current.next_hop = neighbor;
      current.hop_count = 1;
      current.valid = true;
    }
    current.expires = std::max(current.expires, now + active_route_timeout_);
  } else {
    it->second.valid = true;
  }
}

void RoutingTable::refresh(NodeId dest, sim::SimTime now) {
  if (Route* r = find(dest); r != nullptr && r->valid) {
    r->expires = std::max(r->expires, now + active_route_timeout_);
  }
}

void RoutingTable::invalidate(NodeId dest) {
  if (Route* r = find(dest); r != nullptr && r->valid) {
    r->valid = false;
    if (r->valid_seq) ++r->seq;  // RFC 3561 §6.11
  }
}

std::vector<std::pair<NodeId, std::uint32_t>> RoutingTable::invalidate_via(NodeId next_hop) {
  std::vector<std::pair<NodeId, std::uint32_t>> affected;
  for (auto& [dest, route] : routes_) {
    if (route.valid && route.next_hop == next_hop) {
      route.valid = false;
      if (route.valid_seq) ++route.seq;
      affected.emplace_back(dest, route.seq);
    }
  }
  return affected;
}

std::vector<NodeId> RoutingTable::active_next_hops(sim::SimTime now) const {
  std::vector<NodeId> hops;
  for (const auto& [dest, route] : routes_) {
    if (route.valid && route.expires > now &&
        std::find(hops.begin(), hops.end(), route.next_hop) == hops.end()) {
      hops.push_back(route.next_hop);
    }
  }
  return hops;
}

}  // namespace mccls::aodv
