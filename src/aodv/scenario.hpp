// End-to-end scenario runner reproducing the paper's §6 setup: 20 nodes,
// random waypoint over 1500 m × 300 m, pause 0 s, CBR flows, optional McCLS
// routing authentication, optional 2-node black-hole or rushing attack.
// This is the engine behind bench_fig1 .. bench_fig5.
#pragma once

#include <string>

#include "aodv/agent.hpp"
#include "aodv/traffic.hpp"
#include "net/channel.hpp"

namespace mccls::aodv {

enum class SecurityMode {
  kNone,     ///< plain AODV (the paper's baseline)
  kModeled,  ///< CLS extension with the fast behaviour-equivalent provider
  kReal,     ///< CLS extension running the actual scheme (slow; tests)
};

struct ScenarioConfig {
  // Field and population (paper defaults).
  std::size_t num_nodes = 20;
  double area_width = 1500;
  double area_height = 300;
  double max_speed = 10;  ///< m/s; the figures sweep 0..20
  double pause = 0;
  double duration = 300;  ///< seconds of simulated time

  // Workload.
  std::size_t num_flows = 10;
  double cbr_interval = 0.25;  ///< 4 packets/s
  std::size_t payload_bytes = 512;
  double traffic_start_min = 5;
  double traffic_start_max = 15;

  // Security extension.
  SecurityMode security = SecurityMode::kNone;
  std::string scheme = "McCLS";
  CryptoCosts crypto_costs{.sign_delay = 0, .verify_delay = 0};  ///< 0 = derive from scheme

  // Attack.
  AttackType attack = AttackType::kNone;
  std::size_t num_attackers = 2;  ///< paper: "2 nodes" for both attacks
  /// Attackers choose their ground: pinned evenly along the field's
  /// centerline (maximum coverage) rather than roaming randomly. Set false
  /// for the roaming-attacker ablation.
  bool pin_attackers = true;

  std::uint64_t seed = 1;
  /// QualNet-era 802.11 two-ray propagation reaches ~350-380 m; the generic
  /// PhyConfig default of 250 m is too sparse for 20 nodes on this field.
  net::PhyConfig phy{.range = 350.0};
  /// Rejection-sampling budget for a connected initial placement; when
  /// exhausted the run proceeds on the last (disconnected) draw and
  /// ScenarioResult::disconnected_placements records it.
  int placement_attempts = 200;
  AodvConfig aodv;
};

struct ScenarioResult {
  Metrics metrics;
  net::Channel::Stats channel;
  /// Runs (0 or 1 for a single run; summed when averaged) whose initial
  /// placement stayed disconnected after the rejection-sampling budget.
  std::uint64_t disconnected_placements = 0;

  [[nodiscard]] double pdr() const { return metrics.packet_delivery_ratio(); }
  [[nodiscard]] double rreq_ratio() const { return metrics.rreq_ratio(); }
  [[nodiscard]] double avg_delay() const { return metrics.avg_end_to_end_delay(); }
  [[nodiscard]] double drop_ratio() const { return metrics.packet_drop_ratio(); }
};

/// Per-scheme CPU cost model used when ScenarioConfig::crypto_costs is zero:
/// Table 1 operation counts priced at 2008-era embedded-CPU costs
/// (`pairing_ms` per pairing, `mult_ms` per scalar multiplication).
CryptoCosts derive_crypto_costs(std::string_view scheme_name, double pairing_ms = 20.0,
                                double mult_ms = 2.0);

ScenarioResult run_scenario(const ScenarioConfig& config);

/// Runs `seeds` independent replications (seed, seed+1, ...) and sums the
/// raw counters, so derived ratios are workload-weighted means.
ScenarioResult run_scenario_averaged(ScenarioConfig config, unsigned seeds);

}  // namespace mccls::aodv
