// The McCLS routing-authentication extension (paper §6) and its cost model.
//
// Two interchangeable providers implement the same interface:
//
//  * RealClsSecurity    — runs the actual certificateless scheme: a KGC,
//    per-node enrolment, genuine sign/verify on every control packet.
//    Ground truth; used by integration tests and small scenarios.
//
//  * ModeledClsSecurity — keyed-MAC stand-in with the same *interface,
//    wire sizes and latency model*, but microsecond-cheap host execution.
//    The paper's threat model (attackers cannot forge; see DESIGN.md §3)
//    is enforced by construction: only enrolled nodes can produce valid
//    tags. Used for the Fig 1-5 sweeps where thousands of control packets
//    flow; tests assert both providers induce identical protocol behaviour.
//
// Latency: sign_delay / verify_delay model the CPU cost a 2008-era node
// pays per operation; scenario code injects them into the event timeline.
// Defaults are calibrated from this host's measured primitive costs scaled
// to the paper's hardware era (see scenario.cpp).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "aodv/messages.hpp"
#include "cls/registry.hpp"

namespace mccls::aodv {

struct CryptoCosts {
  double sign_delay = 0;    ///< seconds of node CPU per signature
  double verify_delay = 0;  ///< seconds of node CPU per verification
};

class SecurityProvider {
 public:
  virtual ~SecurityProvider() = default;

  /// Gives `node` valid credentials (KGC partial key + user key pair).
  virtual void enroll(NodeId node) = 0;
  [[nodiscard]] virtual bool is_enrolled(NodeId node) const = 0;

  /// Produces the auth extension for `message`. Non-enrolled signers (the
  /// attackers) get structurally well-formed but cryptographically invalid
  /// extensions — their best effort under the unforgeability assumption.
  virtual AuthExt sign(NodeId signer, std::span<const std::uint8_t> message) = 0;

  /// Checks an auth extension against `message`.
  virtual bool verify(const AuthExt& auth, std::span<const std::uint8_t> message) = 0;

  [[nodiscard]] const CryptoCosts& costs() const { return costs_; }
  void set_costs(const CryptoCosts& costs) { costs_ = costs; }

 protected:
  CryptoCosts costs_;
};

/// Real certificateless scheme provider.
class RealClsSecurity final : public SecurityProvider {
 public:
  /// `scheme_name` is a Table 1 name ("McCLS", "YHG", ...).
  RealClsSecurity(std::string_view scheme_name, std::uint64_t seed);

  void enroll(NodeId node) override;
  [[nodiscard]] bool is_enrolled(NodeId node) const override;
  AuthExt sign(NodeId signer, std::span<const std::uint8_t> message) override;
  bool verify(const AuthExt& auth, std::span<const std::uint8_t> message) override;

  /// Identity string for a node id ("node-7").
  static std::string identity(NodeId node);

 private:
  std::unique_ptr<cls::Scheme> scheme_;
  crypto::HmacDrbg rng_;
  cls::Kgc kgc_;
  cls::PairingCache cache_;
  std::unordered_map<NodeId, cls::UserKeys> enrolled_;
};

/// Behaviour-equivalent fast stand-in (keyed MAC under the hood).
class ModeledClsSecurity final : public SecurityProvider {
 public:
  /// `auth_bytes_hint`: wire size the modelled signature+key should occupy;
  /// pass the real scheme's sizes so airtime stays faithful.
  ModeledClsSecurity(std::uint64_t seed, std::size_t signature_bytes,
                     std::size_t public_key_bytes);

  void enroll(NodeId node) override { enrolled_.insert(node); }
  [[nodiscard]] bool is_enrolled(NodeId node) const override {
    return enrolled_.contains(node);
  }
  AuthExt sign(NodeId signer, std::span<const std::uint8_t> message) override;
  bool verify(const AuthExt& auth, std::span<const std::uint8_t> message) override;

 private:
  crypto::Bytes tag(NodeId signer, std::span<const std::uint8_t> message) const;

  crypto::Bytes secret_;
  std::size_t signature_bytes_;
  std::size_t public_key_bytes_;
  std::unordered_set<NodeId> enrolled_;
};

}  // namespace mccls::aodv
