// AODV routing agent (RFC 3561 subset), per node. Implements the mechanisms
// the paper's §6 evaluation retains: route discovery (expanding RREQ flood
// with duplicate suppression and retries), reverse/forward path setup, RREP
// unicast chains, route maintenance (link-failure detection + RERR), data
// buffering during discovery.
//
// Three orthogonal extensions are layered on the same agent, matching the
// paper's experimental matrix:
//   * security  — a SecurityProvider signs/verifies control packets
//                 (the McCLS routing-authentication extension),
//   * black-hole attacker — answers any RREQ with a forged fresh RREP and
//                 silently absorbs data (Marti et al. [8]),
//   * rushing attacker — skips all forwarding jitter/backoff to win the
//                 duplicate-suppression race, then absorbs data
//                 (Hu-Perrig-Johnson [6]).
#pragma once

#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <variant>

#include "aodv/messages.hpp"
#include "aodv/routing_table.hpp"
#include "aodv/security.hpp"
#include "aodv/stats.hpp"
#include "net/channel.hpp"
#include "sim/rng.hpp"

namespace mccls::aodv {

enum class AttackType {
  kNone,
  kBlackHole,  ///< outsider: forged fresh RREPs, absorbs data (Marti et al. [8])
  kRushing,    ///< outsider: zero-jitter forwarding race (Hu-Perrig-Johnson [6])
  kGrayHole,   ///< INSIDER: protocol-honest, holds valid credentials, but
               ///< drops a fraction of transit data. Signatures cannot stop
               ///< this one — it demonstrates the boundary of what McCLS
               ///< (or any authentication scheme) defends against.
  kWormhole,   ///< colluding pair replaying control traffic verbatim over an
               ///< out-of-band tunnel with the original sender spoofed at
               ///< the physical layer. Every replayed signature is genuine,
               ///< so authentication cannot stop it (that takes packet
               ///< leashes); the fake adjacencies it creates poison routes.
  kSybil,      ///< outsider: fabricates a pool of cheap identities, beacons
               ///< them and answers discoveries as them, absorbing routed
               ///< data. KGC admission is the defense: sybil identities are
               ///< never enrolled, so their signatures cannot verify.
  kReplayStorm,  ///< outsider: records overheard RREQs and refloods them
                 ///< (verbatim with the original transmitter spoofed, plus
                 ///< id-mutated copies that defeat duplicate suppression).
                 ///< The signed origination timestamp is the defense:
                 ///< secured nodes drop stale floods (replay_rejected), and
                 ///< mutating any signed field breaks the signature.
};

/// Fraction of transit data a gray hole silently discards.
inline constexpr double kGrayHoleDropProbability = 0.5;

struct AodvConfig {
  double active_route_timeout = 6.0;   ///< seconds a route stays fresh
  double net_traversal_time = 0.75;    ///< RREQ round-trip budget, attempt 1
  int rreq_retries = 2;                ///< extra attempts after the first
  double forward_jitter_max = 0.01;    ///< RREQ rebroadcast jitter (honest nodes)
  std::size_t buffer_capacity = 64;    ///< per-destination data buffer
  std::uint8_t net_diameter = 35;      ///< initial RREQ TTL
  double rrep_lifetime = 6.0;
  double path_discovery_time = 5.0;    ///< RREQ-id dedup cache lifetime

  // Local connectivity maintenance (RFC 3561 §6.9). With HELLO-based
  // detection a broken link goes unnoticed for up to
  // allowed_hello_loss * hello_interval seconds — data sent into the break
  // during that window is lost, which is the dominant mobility cost in
  // 2008-era simulations. link_layer_feedback = true switches to instant
  // MAC-ACK detection instead (an ablation knob, not the paper's setup).
  bool use_hello = true;
  double hello_interval = 1.0;
  int allowed_hello_loss = 2;
  bool link_layer_feedback = false;

  // Gratuitous RREP (RFC 3561 §6.6.3): when an intermediate node answers a
  // discovery from its cache, also inform the destination of the route back
  // to the originator, so reply traffic needs no discovery of its own.
  bool gratuitous_rrep = false;

  // Expanding ring search (RFC 3561 §6.4): probe with growing TTLs before
  // flooding the whole network. Trades discovery latency for flood volume;
  // off by default (bench_ablation measures the trade).
  bool expanding_ring = false;
  std::uint8_t ttl_start = 1;
  std::uint8_t ttl_increment = 2;
  std::uint8_t ttl_threshold = 7;
  double node_traversal_time = 0.04;  ///< per-hop budget for ring timeouts

  // Replay defense: secured nodes drop RREQs whose signed origination
  // timestamp is older than this many seconds (0 disables). Unsigned
  // timestamps are forgeable, so plain AODV never checks.
  double rreq_freshness = 3.0;

  // Attack knobs (only read by agents running the matching AttackType).
  std::size_t sybil_pool = 4;          ///< fabricated identities per attacker
  double replay_storm_interval = 1.0;  ///< seconds between reflood bursts
  std::size_t replay_record_cap = 16;  ///< overheard RREQs retained
  int replay_copies = 3;               ///< id-mutated copies per RREQ per burst
};

/// Payload carried in net::Frame::payload for all AODV traffic.
struct AodvPayload {
  std::variant<Rreq, Rrep, Rerr, Hello, DataPacket> msg;
};

class AodvAgent final : public net::RadioListener {
 public:
  /// `security == nullptr` runs plain AODV. The agent attaches itself to
  /// `channel`; all references must outlive the agent.
  AodvAgent(sim::Simulator& simulator, net::Channel& channel, NodeId id,
            const AodvConfig& config, sim::Rng rng, Metrics& metrics,
            SecurityProvider* security = nullptr, AttackType attack = AttackType::kNone);

  /// Application entry point: submit one data packet for `dst`.
  void send_data(NodeId dst, std::size_t payload_bytes);

  void on_frame(const net::Frame& frame) override;

  /// Wires this attacker to its colluders. Rushing attackers tunnel RREQs
  /// (and returning RREPs) to each other out-of-band — the Hu-Perrig-Johnson
  /// rushing attack's wormhole variant, which the paper's "2 nodes rushing
  /// attack" corresponds to.
  void set_collusion_peers(std::vector<AodvAgent*> peers);

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] AttackType attack() const { return attack_; }
  [[nodiscard]] const RoutingTable& table() const { return table_; }
  [[nodiscard]] RoutingTable& table() { return table_; }
  [[nodiscard]] bool secured() const { return security_ != nullptr; }

 private:
  // --- control plane ---
  void handle_rreq(Rreq rreq, NodeId from);
  void handle_rrep(Rrep rrep, NodeId from);
  void handle_rerr(const Rerr& rerr, NodeId from);
  void handle_data(const DataPacket& pkt, NodeId from);

  void originate_discovery(NodeId dst);
  void send_rreq(NodeId dst, int attempt, std::uint8_t ttl);
  [[nodiscard]] std::uint8_t initial_rreq_ttl() const;
  void reply_as_destination(const Rreq& rreq, NodeId reverse_hop);
  void reply_as_intermediate(const Rreq& rreq, const Route& route, NodeId reverse_hop);
  void send_rrep(Rrep rrep, NodeId next_hop, bool forwarded);
  void forward_rreq(Rreq rreq);
  void send_rerr(std::vector<std::pair<NodeId, std::uint32_t>> unreachable);
  void black_hole_reply(const Rreq& rreq, NodeId reverse_hop);

  // --- sybil / replay-storm attackers ---
  [[nodiscard]] NodeId sybil_identity(std::size_t k) const;
  void sybil_reply(const Rreq& rreq, NodeId reverse_hop);
  void sybil_hello_tick();
  void replay_storm_tick();

  // --- local connectivity maintenance ---
  void hello_tick();
  void note_alive(NodeId neighbor);

  // --- collusion tunnel (rushing attack) ---
  void on_tunneled_rreq(Rreq rreq, NodeId from_peer);
  void on_tunneled_rrep(Rrep rrep, NodeId from_peer);
  [[nodiscard]] AodvAgent* peer_by_id(NodeId id) const;

  // --- wormhole relay ---
  void wormhole_relay(const net::Frame& frame);

  // --- data plane ---
  void forward_data(const DataPacket& pkt, bool at_origin);
  void flush_buffer(NodeId dst);
  void abandon_discovery(NodeId dst);
  void on_link_break(NodeId next_hop);

  // --- security helpers ---
  /// Verifies both auth extensions; charges verify ops. True when the packet
  /// should be processed (always true without security).
  bool authenticate(const std::optional<AuthExt>& origin_auth,
                    const std::optional<AuthExt>& hop_auth,
                    std::span<const std::uint8_t> signable);
  /// Signing latency to charge before a secured control send.
  [[nodiscard]] double sign_latency() const;
  [[nodiscard]] double verify_latency(int signatures) const;
  [[nodiscard]] std::size_t auth_overhead(const std::optional<AuthExt>& a,
                                          const std::optional<AuthExt>& b) const;

  bool already_seen(NodeId origin, std::uint32_t rreq_id);

  sim::Simulator& sim_;
  net::Channel& channel_;
  NodeId id_;
  AodvConfig cfg_;
  sim::Rng rng_;
  Metrics& metrics_;
  SecurityProvider* security_;
  AttackType attack_;
  RoutingTable table_;

  std::uint32_t seq_ = 0;
  std::uint32_t next_rreq_id_ = 1;
  std::uint32_t next_data_seq_ = 1;

  struct Discovery {
    int attempt = 0;
    int full_floods = 0;  ///< network-wide attempts so far (retry budget)
    sim::EventId timeout = 0;
  };
  std::unordered_map<NodeId, Discovery> pending_;
  std::unordered_map<NodeId, std::deque<DataPacket>> buffer_;
  std::unordered_map<std::uint64_t, sim::SimTime> seen_rreqs_;
  std::unordered_map<NodeId, sim::SimTime> last_heard_;
  std::uint32_t hello_seq_ = 0;
  std::vector<AodvAgent*> collusion_peers_;
  std::unordered_set<std::uint64_t> tunneled_;  ///< wormhole replay dedup

  // Attacker state (sybil / replay-storm).
  std::uint32_t sybil_seq_ = 0;
  std::size_t sybil_cursor_ = 0;
  std::vector<std::pair<Rreq, NodeId>> replay_log_;  ///< (packet, transmitter)
  std::uint32_t replay_mutation_ = 0;
};

}  // namespace mccls::aodv
