#include "aodv/codec.hpp"

#include <cmath>

namespace mccls::aodv {

namespace {

constexpr std::uint8_t kTagRreq = 0x01;
constexpr std::uint8_t kTagRrep = 0x02;
constexpr std::uint8_t kTagRerr = 0x03;
constexpr std::uint8_t kTagHello = 0x04;
constexpr std::uint8_t kTagData = 0x05;

// Time fields travel as integer microseconds. Two property-fuzz findings
// live here: encoding must ROUND (truncation drops a microsecond on every
// decode→re-encode cycle whenever the time has no exact double
// representation, so the codec never reaches a fixpoint), and decoding must
// reject values above 2^50 µs (~35 years of sim time) — beyond that the
// µs→double→µs round-trip is no longer exact, so such a frame can never
// re-encode canonically.
constexpr std::uint64_t kMaxTimeMicros = std::uint64_t{1} << 50;

std::uint64_t time_to_micros(double seconds) {
  return static_cast<std::uint64_t>(std::llround(seconds * 1e6));
}

std::optional<double> micros_to_time(std::uint64_t micros) {
  if (micros > kMaxTimeMicros) return std::nullopt;
  return static_cast<double>(micros) / 1e6;
}

void put_auth(crypto::ByteWriter& w, const std::optional<AuthExt>& auth) {
  w.put_u8(auth.has_value() ? 1 : 0);
  if (!auth) return;
  w.put_u32(auth->signer);
  w.put_field(auth->public_key);
  w.put_field(auth->signature);
}

bool get_auth(crypto::ByteReader& r, std::optional<AuthExt>& out) {
  const auto present = r.get_u8();
  if (!present) return false;
  if (*present == 0) {
    out = std::nullopt;
    return true;
  }
  if (*present != 1) return false;
  AuthExt auth;
  const auto signer = r.get_u32();
  auto pk = r.get_field();
  auto sig = r.get_field();
  if (!signer || !pk || !sig) return false;
  auth.signer = *signer;
  auth.public_key = std::move(*pk);
  auth.signature = std::move(*sig);
  out = auth;
  return true;
}

void encode(crypto::ByteWriter& w, const Rreq& m) {
  w.put_u8(kTagRreq);
  w.put_u32(m.rreq_id);
  w.put_u32(m.origin);
  w.put_u32(m.origin_seq);
  w.put_u32(m.dest);
  w.put_u32(m.dest_seq);
  w.put_u8(m.unknown_dest_seq ? 1 : 0);
  w.put_u64(time_to_micros(m.issued_at));
  w.put_u8(m.hop_count);
  w.put_u8(m.ttl);
  put_auth(w, m.origin_auth);
  put_auth(w, m.hop_auth);
}

void encode(crypto::ByteWriter& w, const Rrep& m) {
  w.put_u8(kTagRrep);
  w.put_u32(m.origin);
  w.put_u32(m.dest);
  w.put_u32(m.dest_seq);
  w.put_u32(m.replier);
  w.put_u8(m.hop_count);
  w.put_u64(time_to_micros(m.lifetime));
  put_auth(w, m.origin_auth);
  put_auth(w, m.hop_auth);
}

void encode(crypto::ByteWriter& w, const Rerr& m) {
  w.put_u8(kTagRerr);
  w.put_u32(static_cast<std::uint32_t>(m.unreachable.size()));
  for (const auto& [dest, seq] : m.unreachable) {
    w.put_u32(dest);
    w.put_u32(seq);
  }
  put_auth(w, m.origin_auth);
}

void encode(crypto::ByteWriter& w, const Hello& m) {
  w.put_u8(kTagHello);
  w.put_u32(m.node);
  w.put_u32(m.seq);
  put_auth(w, m.origin_auth);
}

void encode(crypto::ByteWriter& w, const DataPacket& m) {
  w.put_u8(kTagData);
  w.put_u32(m.src);
  w.put_u32(m.dst);
  w.put_u32(m.seq);
  w.put_u64(time_to_micros(m.sent_at));
  w.put_u64(m.payload_bytes);
}

std::optional<Rreq> decode_rreq(crypto::ByteReader& r) {
  Rreq m;
  const auto rreq_id = r.get_u32();
  const auto origin = r.get_u32();
  const auto origin_seq = r.get_u32();
  const auto dest = r.get_u32();
  const auto dest_seq = r.get_u32();
  const auto unknown = r.get_u8();
  const auto issued_us = r.get_u64();
  const auto hops = r.get_u8();
  const auto ttl = r.get_u8();
  if (!rreq_id || !origin || !origin_seq || !dest || !dest_seq || !unknown || !issued_us ||
      !hops || !ttl || *unknown > 1) {
    return std::nullopt;
  }
  m.rreq_id = *rreq_id;
  m.origin = *origin;
  m.origin_seq = *origin_seq;
  m.dest = *dest;
  m.dest_seq = *dest_seq;
  m.unknown_dest_seq = *unknown == 1;
  const auto issued_at = micros_to_time(*issued_us);
  if (!issued_at) return std::nullopt;
  m.issued_at = *issued_at;
  m.hop_count = *hops;
  m.ttl = *ttl;
  if (!get_auth(r, m.origin_auth) || !get_auth(r, m.hop_auth)) return std::nullopt;
  return m;
}

std::optional<Rrep> decode_rrep(crypto::ByteReader& r) {
  Rrep m;
  const auto origin = r.get_u32();
  const auto dest = r.get_u32();
  const auto dest_seq = r.get_u32();
  const auto replier = r.get_u32();
  const auto hops = r.get_u8();
  const auto lifetime_us = r.get_u64();
  if (!origin || !dest || !dest_seq || !replier || !hops || !lifetime_us) {
    return std::nullopt;
  }
  m.origin = *origin;
  m.dest = *dest;
  m.dest_seq = *dest_seq;
  m.replier = *replier;
  m.hop_count = *hops;
  const auto lifetime = micros_to_time(*lifetime_us);
  if (!lifetime) return std::nullopt;
  m.lifetime = *lifetime;
  if (!get_auth(r, m.origin_auth) || !get_auth(r, m.hop_auth)) return std::nullopt;
  return m;
}

std::optional<Rerr> decode_rerr(crypto::ByteReader& r) {
  Rerr m;
  const auto count = r.get_u32();
  if (!count || *count > 4096) return std::nullopt;  // sanity bound
  for (std::uint32_t i = 0; i < *count; ++i) {
    const auto dest = r.get_u32();
    const auto seq = r.get_u32();
    if (!dest || !seq) return std::nullopt;
    m.unreachable.emplace_back(*dest, *seq);
  }
  if (!get_auth(r, m.origin_auth)) return std::nullopt;
  return m;
}

std::optional<Hello> decode_hello(crypto::ByteReader& r) {
  Hello m;
  const auto node = r.get_u32();
  const auto seq = r.get_u32();
  if (!node || !seq) return std::nullopt;
  m.node = *node;
  m.seq = *seq;
  if (!get_auth(r, m.origin_auth)) return std::nullopt;
  return m;
}

std::optional<DataPacket> decode_data(crypto::ByteReader& r) {
  DataPacket m;
  const auto src = r.get_u32();
  const auto dst = r.get_u32();
  const auto seq = r.get_u32();
  const auto sent_us = r.get_u64();
  const auto payload = r.get_u64();
  if (!src || !dst || !seq || !sent_us || !payload) return std::nullopt;
  m.src = *src;
  m.dst = *dst;
  m.seq = *seq;
  const auto sent_at = micros_to_time(*sent_us);
  if (!sent_at) return std::nullopt;
  m.sent_at = *sent_at;
  m.payload_bytes = static_cast<std::size_t>(*payload);
  return m;
}

}  // namespace

crypto::Bytes encode_packet(const AodvPayload& payload) {
  crypto::ByteWriter w;
  std::visit([&w](const auto& msg) { encode(w, msg); }, payload.msg);
  return w.take();
}

std::optional<AodvPayload> decode_packet(std::span<const std::uint8_t> bytes) {
  crypto::ByteReader r(bytes);
  const auto tag = r.get_u8();
  if (!tag) return std::nullopt;
  std::optional<AodvPayload> out;
  switch (*tag) {
    case kTagRreq:
      if (auto m = decode_rreq(r)) out = AodvPayload{std::move(*m)};
      break;
    case kTagRrep:
      if (auto m = decode_rrep(r)) out = AodvPayload{std::move(*m)};
      break;
    case kTagRerr:
      if (auto m = decode_rerr(r)) out = AodvPayload{std::move(*m)};
      break;
    case kTagHello:
      if (auto m = decode_hello(r)) out = AodvPayload{std::move(*m)};
      break;
    case kTagData:
      if (auto m = decode_data(r)) out = AodvPayload{std::move(*m)};
      break;
    default:
      return std::nullopt;
  }
  if (!out || !r.exhausted()) return std::nullopt;
  return out;
}

}  // namespace mccls::aodv
