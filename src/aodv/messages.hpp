// AODV control messages (RFC 3561 subset) and the data-packet header, plus
// the routing-authentication extension the paper attaches to them (§6: "CLS
// with routing authentication extension").
//
// Signing covers the IMMUTABLE fields of each message (hop_count mutates in
// flight, so it is excluded — the standard secure-AODV design). Two
// signatures ride on each control packet:
//   origin_auth — by the node that created the message (end-to-end)
//   hop_auth    — by the most recent forwarder (hop-by-hop); this is what
//                 locks rushing attackers out of the forwarding race.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "crypto/encoding.hpp"
#include "net/frame.hpp"
#include "sim/simulator.hpp"

namespace mccls::aodv {

using net::NodeId;

/// Authentication extension carried by secured control packets.
struct AuthExt {
  NodeId signer = 0;
  crypto::Bytes public_key;  ///< serialized cls::PublicKey (self-contained)
  crypto::Bytes signature;
};

struct Rreq {
  std::uint32_t rreq_id = 0;
  NodeId origin = 0;
  std::uint32_t origin_seq = 0;
  NodeId dest = 0;
  std::uint32_t dest_seq = 0;
  bool unknown_dest_seq = true;
  /// Origination timestamp, signed with the immutable fields. Secured nodes
  /// reject RREQs older than AodvConfig::rreq_freshness — the replay-storm
  /// defense (an attacker cannot refresh it without the originator's key).
  sim::SimTime issued_at = 0;
  std::uint8_t hop_count = 0;  ///< mutable; excluded from signatures
  std::uint8_t ttl = 35;       ///< mutable; excluded from signatures
  std::optional<AuthExt> origin_auth;
  std::optional<AuthExt> hop_auth;
};

struct Rrep {
  NodeId origin = 0;  ///< the discovery originator this reply travels to
  NodeId dest = 0;
  std::uint32_t dest_seq = 0;
  NodeId replier = 0;  ///< destination or intermediate node that generated it
  std::uint8_t hop_count = 0;
  double lifetime = 0;
  std::optional<AuthExt> origin_auth;
  std::optional<AuthExt> hop_auth;
};

struct Rerr {
  std::vector<std::pair<NodeId, std::uint32_t>> unreachable;  ///< (dest, seq)
  std::optional<AuthExt> origin_auth;
};

/// HELLO beacon (RFC 3561 §6.9: a hop-0 RREP used for local connectivity
/// maintenance). Links are declared broken when ALLOWED_HELLO_LOSS intervals
/// pass silently — the detection latency that makes mobility lossy.
struct Hello {
  NodeId node = 0;
  std::uint32_t seq = 0;
  std::optional<AuthExt> origin_auth;
};

/// Network-layer data packet (simulated payload; bytes only).
struct DataPacket {
  NodeId src = 0;
  NodeId dst = 0;
  std::uint32_t seq = 0;
  sim::SimTime sent_at = 0;  ///< when the application submitted it
  std::size_t payload_bytes = 0;
};

/// Bytes the originator signs (immutable fields only).
crypto::Bytes signable_bytes(const Rreq& rreq);
crypto::Bytes signable_bytes(const Rrep& rrep);
crypto::Bytes signable_bytes(const Rerr& rerr);
crypto::Bytes signable_bytes(const Hello& hello);

/// On-air sizes, including IP/UDP framing, excluding auth extensions.
std::size_t base_wire_size(const Rreq& rreq);
std::size_t base_wire_size(const Rrep& rrep);
std::size_t base_wire_size(const Rerr& rerr);
std::size_t base_wire_size(const Hello& hello);
std::size_t wire_size(const DataPacket& pkt);

/// Extra on-air bytes contributed by one auth extension.
std::size_t wire_size(const AuthExt& auth);

}  // namespace mccls::aodv
