#include "aodv/scenario.hpp"

#include <memory>
#include <stdexcept>

#include "cls/mccls.hpp"
#include "net/mobility.hpp"

namespace mccls::aodv {

CryptoCosts derive_crypto_costs(std::string_view scheme_name, double pairing_ms,
                                double mult_ms) {
  const auto scheme = cls::make_scheme(scheme_name);
  if (scheme == nullptr) {
    throw std::invalid_argument("derive_crypto_costs: unknown scheme");
  }
  const cls::OpCounts ops = scheme->costs();
  // Exponentiations in GT priced like pairings/4 (empirically close on this
  // substrate; see bench_primitives).
  return CryptoCosts{
      .sign_delay =
          (ops.sign_pairings * pairing_ms + ops.sign_scalar_mults * mult_ms) / 1e3,
      .verify_delay = (ops.verify_pairings * pairing_ms + ops.verify_scalar_mults * mult_ms +
                       ops.verify_exponentiations * pairing_ms / 4.0) /
                      1e3,
  };
}

ScenarioResult run_scenario(const ScenarioConfig& config) {
  if (config.num_nodes < 2) throw std::invalid_argument("run_scenario: need >= 2 nodes");
  if (config.num_attackers >= config.num_nodes - 1 && config.attack != AttackType::kNone) {
    throw std::invalid_argument("run_scenario: too many attackers");
  }

  sim::Simulator simulator;
  sim::Rng rng(config.seed);

  const net::RandomWaypointMobility::Config mob_cfg{
      .width = config.area_width,
      .height = config.area_height,
      .max_speed = config.max_speed,
      .min_speed = 0.1,
      .pause = config.pause,
      .connect_range = config.phy.range,  // start from a connected placement
      .placement_attempts = config.placement_attempts,
  };
  sim::Rng mobility_rng = rng.fork(0x10B);
  net::RandomWaypointMobility base_mobility(config.num_nodes, mob_cfg, mobility_rng);

  const std::size_t first_attacker_for_mobility =
      config.attack == AttackType::kNone ? config.num_nodes
                                         : config.num_nodes - config.num_attackers;
  const bool pin = config.pin_attackers && config.attack != AttackType::kNone;
  net::PinnedTailMobility pinned_mobility(base_mobility, first_attacker_for_mobility,
                                          config.num_nodes, config.area_width,
                                          config.area_height);
  net::MobilityModel& mobility =
      pin ? static_cast<net::MobilityModel&>(pinned_mobility) : base_mobility;

  net::Channel channel(simulator, rng.fork(0xC4A), mobility, config.phy);

  // Security provider (shared KGC / shared modelled secret).
  std::unique_ptr<SecurityProvider> security;
  if (config.security == SecurityMode::kModeled) {
    // Wire sizes mirror the real scheme so airtime stays faithful.
    const auto scheme = cls::make_scheme(config.scheme);
    if (scheme == nullptr) throw std::invalid_argument("run_scenario: unknown scheme");
    const std::size_t pk_bytes =
        1 + scheme->costs().public_key_points * ec::G1::kEncodedSize;
    security = std::make_unique<ModeledClsSecurity>(config.seed ^ 0x5EC, //
                                                    scheme->signature_size(), pk_bytes);
  } else if (config.security == SecurityMode::kReal) {
    security = std::make_unique<RealClsSecurity>(config.scheme, config.seed ^ 0x5EC);
  }
  if (security != nullptr) {
    security->set_costs(config.crypto_costs.sign_delay > 0 || config.crypto_costs.verify_delay > 0
                            ? config.crypto_costs
                            : derive_crypto_costs(config.scheme));
  }

  // Attackers are the highest node ids (placement is uniform anyway).
  const std::size_t first_attacker =
      config.attack == AttackType::kNone ? config.num_nodes
                                         : config.num_nodes - config.num_attackers;

  Metrics metrics;
  std::vector<std::unique_ptr<AodvAgent>> agents;
  agents.reserve(config.num_nodes);
  for (std::size_t i = 0; i < config.num_nodes; ++i) {
    const bool is_attacker = i >= first_attacker;
    const AttackType role = is_attacker ? config.attack : AttackType::kNone;
    if (security != nullptr && (!is_attacker || config.attack == AttackType::kGrayHole)) {
      // Gray holes are insiders: they hold valid credentials.
      security->enroll(static_cast<NodeId>(i));  // attackers hold no credentials
    }
    agents.push_back(std::make_unique<AodvAgent>(
        simulator, channel, static_cast<NodeId>(i), config.aodv, rng.fork(0xA6E0 + i),
        metrics, security.get(), role));
  }

  // Rushing attackers collude via an out-of-band tunnel (the "2 nodes
  // rushing attack" of the paper / Hu-Perrig-Johnson).
  if (config.attack == AttackType::kRushing || config.attack == AttackType::kWormhole) {
    for (std::size_t i = first_attacker; i < config.num_nodes; ++i) {
      std::vector<AodvAgent*> peers;
      for (std::size_t j = first_attacker; j < config.num_nodes; ++j) {
        if (j != i) peers.push_back(agents[j].get());
      }
      agents[i]->set_collusion_peers(std::move(peers));
    }
  }

  // CBR flows between distinct honest nodes (attackers relay only, as in the
  // paper: they are infrastructure threats, not traffic endpoints).
  sim::Rng traffic_rng = rng.fork(0x7F0);
  for (std::size_t f = 0; f < config.num_flows; ++f) {
    const NodeId src = static_cast<NodeId>(traffic_rng.uniform_int(first_attacker));
    NodeId dst = src;
    while (dst == src) dst = static_cast<NodeId>(traffic_rng.uniform_int(first_attacker));
    install_flow(simulator, agents,
                 CbrFlow{.src = src,
                         .dst = dst,
                         .start = traffic_rng.uniform(config.traffic_start_min,
                                                      config.traffic_start_max),
                         .stop = config.duration,
                         .interval = config.cbr_interval,
                         .payload_bytes = config.payload_bytes});
  }

  simulator.run_until(config.duration);

  return ScenarioResult{
      .metrics = metrics,
      .channel = channel.stats(),
      .disconnected_placements = base_mobility.placement_connected() ? 0u : 1u};
}

ScenarioResult run_scenario_averaged(ScenarioConfig config, unsigned seeds) {
  if (seeds == 0) throw std::invalid_argument("run_scenario_averaged: seeds must be > 0");
  ScenarioResult total{};
  for (unsigned i = 0; i < seeds; ++i) {
    config.seed = config.seed + (i == 0 ? 0 : 1);
    const ScenarioResult one = run_scenario(config);
    total.metrics += one.metrics;
    total.channel += one.channel;
    total.disconnected_placements += one.disconnected_placements;
  }
  return total;
}

}  // namespace mccls::aodv
