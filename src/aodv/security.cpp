#include "aodv/security.hpp"

#include <stdexcept>

#include "crypto/hmac.hpp"

namespace mccls::aodv {

// ---------------------------------------------------------------- real CLS

RealClsSecurity::RealClsSecurity(std::string_view scheme_name, std::uint64_t seed)
    : scheme_(cls::make_scheme(scheme_name)), rng_(seed), kgc_(cls::Kgc::setup(rng_)) {
  if (scheme_ == nullptr) {
    throw std::invalid_argument("RealClsSecurity: unknown scheme " + std::string(scheme_name));
  }
}

std::string RealClsSecurity::identity(NodeId node) { return "node-" + std::to_string(node); }

void RealClsSecurity::enroll(NodeId node) {
  enrolled_.emplace(node, scheme_->enroll(kgc_, identity(node), rng_));
}

bool RealClsSecurity::is_enrolled(NodeId node) const { return enrolled_.contains(node); }

AuthExt RealClsSecurity::sign(NodeId signer, std::span<const std::uint8_t> message) {
  const auto it = enrolled_.find(signer);
  if (it == enrolled_.end()) {
    // Unenrolled attacker: fabricate structurally plausible garbage. Under
    // the CDH assumption it cannot do better (paper §5, Theorems 1-2).
    AuthExt forged;
    forged.signer = signer;
    crypto::HmacDrbg junk(signer * 0x9e3779b97f4a7c15ULL + 1);
    cls::UserKeys fake = scheme_->keygen(
        kgc_.params(), identity(signer),
        kgc_.params().p.mul(junk.next_nonzero_fq()) /* not a real partial key */, junk);
    forged.public_key = fake.public_key.to_bytes();
    forged.signature = scheme_->sign(kgc_.params(), fake, message, junk);
    return forged;
  }
  return AuthExt{.signer = signer,
                 .public_key = it->second.public_key.to_bytes(),
                 .signature = scheme_->sign(kgc_.params(), it->second, message, rng_)};
}

bool RealClsSecurity::verify(const AuthExt& auth, std::span<const std::uint8_t> message) {
  const auto pk = cls::PublicKey::from_bytes(auth.public_key);
  if (!pk) return false;
  return scheme_->verify(kgc_.params(), identity(auth.signer), *pk, message, auth.signature,
                         &cache_);
}

// ------------------------------------------------------------ modelled CLS

ModeledClsSecurity::ModeledClsSecurity(std::uint64_t seed, std::size_t signature_bytes,
                                       std::size_t public_key_bytes)
    : signature_bytes_(signature_bytes), public_key_bytes_(public_key_bytes) {
  crypto::HmacDrbg rng(seed);
  secret_ = rng.generate(32);
}

crypto::Bytes ModeledClsSecurity::tag(NodeId signer,
                                      std::span<const std::uint8_t> message) const {
  crypto::ByteWriter w;
  w.put_u32(signer);
  w.put_field(message);
  const auto mac = crypto::HmacSha256::mac(secret_, w.bytes());
  crypto::Bytes out(mac.begin(), mac.end());
  out.resize(signature_bytes_, 0xA5);  // pad to the modelled wire size
  return out;
}

AuthExt ModeledClsSecurity::sign(NodeId signer, std::span<const std::uint8_t> message) {
  AuthExt auth;
  auth.signer = signer;
  auth.public_key.assign(public_key_bytes_, 0x5A);  // placeholder key bytes
  if (enrolled_.contains(signer)) {
    auth.signature = tag(signer, message);
  } else {
    // Attacker forgery attempt: wrong tag, correct shape.
    auth.signature.assign(signature_bytes_, 0xEE);
  }
  return auth;
}

bool ModeledClsSecurity::verify(const AuthExt& auth, std::span<const std::uint8_t> message) {
  return auth.signature == tag(auth.signer, message);
}

}  // namespace mccls::aodv
