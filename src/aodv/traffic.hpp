// Constant-bit-rate traffic sources — the workload of the paper's §6
// experiments (random source/destination pairs over the 20-node field).
#pragma once

#include <vector>

#include "aodv/agent.hpp"

namespace mccls::aodv {

struct CbrFlow {
  NodeId src = 0;
  NodeId dst = 0;
  sim::SimTime start = 0;
  sim::SimTime stop = 0;        ///< no packets at or after this time
  double interval = 0.25;       ///< seconds between packets (4 pkt/s)
  std::size_t payload_bytes = 512;
};

/// Schedules every packet of `flow` on the simulator, submitting through the
/// source node's agent. `agents` must outlive the simulation.
void install_flow(sim::Simulator& simulator, std::vector<std::unique_ptr<AodvAgent>>& agents,
                  const CbrFlow& flow);

}  // namespace mccls::aodv
