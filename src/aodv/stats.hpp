// Scenario-wide counters and the four derived metrics the paper plots
// (§6): packet delivery ratio, RREQ ratio, end-to-end delay, drop ratio.
#pragma once

#include <cstdint>

namespace mccls::aodv {

struct Metrics {
  // Data plane.
  std::uint64_t data_sent = 0;       ///< packets submitted by source apps
  std::uint64_t data_delivered = 0;  ///< packets that reached their destination
  std::uint64_t data_forwarded = 0;  ///< per-hop forwards at intermediate nodes

  // Control plane.
  std::uint64_t rreq_initiated = 0;
  std::uint64_t rreq_forwarded = 0;
  std::uint64_t rreq_retries = 0;
  std::uint64_t rrep_generated = 0;
  std::uint64_t rrep_forwarded = 0;
  std::uint64_t rerr_sent = 0;

  // Loss accounting.
  std::uint64_t attacker_dropped = 0;  ///< data discarded by attack nodes
  std::uint64_t buffer_drops = 0;      ///< discovery failed / buffer overflow
  std::uint64_t no_route_drops = 0;    ///< forwarding hit a missing route
  std::uint64_t link_fail_drops = 0;   ///< MAC gave up on a broken link

  // Security extension.
  std::uint64_t auth_rejected = 0;    ///< control packets dropped: bad signature
  std::uint64_t replay_rejected = 0;  ///< signed RREQs dropped: stale timestamp
  std::uint64_t sign_ops = 0;
  std::uint64_t verify_ops = 0;

  // Delay (over delivered packets).
  double total_delay = 0;
  std::uint64_t delay_samples = 0;

  /// Fig 1/4: delivered / sent.
  [[nodiscard]] double packet_delivery_ratio() const {
    return data_sent == 0 ? 0.0 : static_cast<double>(data_delivered) / data_sent;
  }

  /// Fig 2: (RREQ initiated + forwarded + retried) / (data sent + forwarded).
  [[nodiscard]] double rreq_ratio() const {
    const auto denom = data_sent + data_forwarded;
    if (denom == 0) return 0.0;
    return static_cast<double>(rreq_initiated + rreq_forwarded + rreq_retries) / denom;
  }

  /// Fig 3: mean end-to-end delay of delivered packets, seconds.
  [[nodiscard]] double avg_end_to_end_delay() const {
    return delay_samples == 0 ? 0.0 : total_delay / static_cast<double>(delay_samples);
  }

  /// Fig 5: data discarded by attackers / data sent by all sources.
  [[nodiscard]] double packet_drop_ratio() const {
    return data_sent == 0 ? 0.0 : static_cast<double>(attacker_dropped) / data_sent;
  }

  Metrics& operator+=(const Metrics& o) {
    data_sent += o.data_sent;
    data_delivered += o.data_delivered;
    data_forwarded += o.data_forwarded;
    rreq_initiated += o.rreq_initiated;
    rreq_forwarded += o.rreq_forwarded;
    rreq_retries += o.rreq_retries;
    rrep_generated += o.rrep_generated;
    rrep_forwarded += o.rrep_forwarded;
    rerr_sent += o.rerr_sent;
    attacker_dropped += o.attacker_dropped;
    buffer_drops += o.buffer_drops;
    no_route_drops += o.no_route_drops;
    link_fail_drops += o.link_fail_drops;
    auth_rejected += o.auth_rejected;
    replay_rejected += o.replay_rejected;
    sign_ops += o.sign_ops;
    verify_ops += o.verify_ops;
    total_delay += o.total_delay;
    delay_samples += o.delay_samples;
    return *this;
  }
};

}  // namespace mccls::aodv
