// AODV routing table (RFC 3561 §2-6): per-destination next hop, hop count,
// destination sequence number and lifetime, with the standard freshness
// rules for route updates.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/frame.hpp"
#include "sim/simulator.hpp"

namespace mccls::aodv {

using net::NodeId;

struct Route {
  NodeId next_hop = 0;
  std::uint8_t hop_count = 0;
  std::uint32_t seq = 0;
  bool valid_seq = false;
  sim::SimTime expires = 0;
  bool valid = false;
};

class RoutingTable {
 public:
  explicit RoutingTable(sim::SimTime active_route_timeout)
      : active_route_timeout_(active_route_timeout) {}

  /// Valid, unexpired route to `dest`, or nullptr.
  Route* find_active(NodeId dest, sim::SimTime now);
  const Route* find_active(NodeId dest, sim::SimTime now) const;

  /// Any table entry (possibly invalid/expired); used for seqnum bookkeeping.
  Route* find(NodeId dest);

  /// RFC 3561 §6.2 update rule: adopt the new route iff the sequence number
  /// is fresher, or equally fresh with a smaller hop count, or the existing
  /// entry is invalid/absent. Refreshes the lifetime on adoption.
  /// Returns true when the entry changed.
  bool offer(NodeId dest, const Route& candidate, sim::SimTime now);

  /// Installs/refreshes the 1-hop route to a neighbour we just heard from.
  void touch_neighbor(NodeId neighbor, sim::SimTime now);

  /// Extends the lifetime of an in-use route (RFC: active routes stay alive).
  void refresh(NodeId dest, sim::SimTime now);

  /// Marks the route invalid (keeps seq for future freshness comparisons),
  /// incrementing its sequence number as RFC 3561 §6.11 requires.
  void invalidate(NodeId dest);

  /// Invalidates every route using `next_hop`; returns the affected
  /// (dest, seq) pairs for RERR generation.
  std::vector<std::pair<NodeId, std::uint32_t>> invalidate_via(NodeId next_hop);

  /// Distinct next hops of currently valid, unexpired routes (for HELLO
  /// based liveness checking).
  [[nodiscard]] std::vector<NodeId> active_next_hops(sim::SimTime now) const;

  [[nodiscard]] std::size_t size() const { return routes_.size(); }
  [[nodiscard]] sim::SimTime active_route_timeout() const { return active_route_timeout_; }

 private:
  sim::SimTime active_route_timeout_;
  std::unordered_map<NodeId, Route> routes_;
};

}  // namespace mccls::aodv
