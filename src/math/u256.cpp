#include "math/u256.hpp"

#include <bit>
#include <cstddef>
#include <stdexcept>

namespace mccls::math {

namespace {

using u128 = unsigned __int128;

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

U256 U256::from_hex(std::string_view hex) {
  if (hex.starts_with("0x") || hex.starts_with("0X")) hex.remove_prefix(2);
  if (hex.empty() || hex.size() > 64) {
    throw std::invalid_argument("U256::from_hex: need 1..64 hex digits");
  }
  U256 out;
  unsigned nibble = 0;
  for (std::size_t i = 0; i < hex.size(); ++i) {
    const int d = hex_digit(hex[hex.size() - 1 - i]);
    if (d < 0) throw std::invalid_argument("U256::from_hex: bad hex digit");
    out.w[nibble / 16] |= static_cast<std::uint64_t>(d) << (4 * (nibble % 16));
    ++nibble;
  }
  return out;
}

U256 U256::from_be_bytes(std::span<const std::uint8_t> bytes) {
  if (bytes.size() > 32) throw std::invalid_argument("U256::from_be_bytes: > 32 bytes");
  U256 out;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    const std::size_t bit_pos = 8 * (bytes.size() - 1 - i);
    out.w[bit_pos / 64] |= static_cast<std::uint64_t>(bytes[i]) << (bit_pos % 64);
  }
  return out;
}

std::string U256::to_hex() const {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string s;
  s.reserve(64);
  for (int limb = 3; limb >= 0; --limb) {
    for (int shift = 60; shift >= 0; shift -= 4) {
      s.push_back(kDigits[(w[limb] >> shift) & 0xF]);
    }
  }
  // Trim leading zeros but keep at least one digit.
  const auto first = s.find_first_not_of('0');
  return first == std::string::npos ? "0" : s.substr(first);
}

std::array<std::uint8_t, 32> U256::to_be_bytes() const {
  std::array<std::uint8_t, 32> out{};
  for (std::size_t i = 0; i < 32; ++i) {
    const std::size_t bit_pos = 8 * (31 - i);
    out[i] = static_cast<std::uint8_t>(w[bit_pos / 64] >> (bit_pos % 64));
  }
  return out;
}

unsigned U256::bit_length() const {
  for (int limb = 3; limb >= 0; --limb) {
    if (w[limb] != 0) {
      return static_cast<unsigned>(64 * limb + 64 - std::countl_zero(w[limb]));
    }
  }
  return 0;
}

int cmp(const U256& a, const U256& b) {
  for (int i = 3; i >= 0; --i) {
    if (a.w[i] != b.w[i]) return a.w[i] < b.w[i] ? -1 : 1;
  }
  return 0;
}

std::uint64_t add(U256& out, const U256& a, const U256& b) {
  u128 carry = 0;
  for (int i = 0; i < 4; ++i) {
    const u128 s = static_cast<u128>(a.w[i]) + b.w[i] + carry;
    out.w[i] = static_cast<std::uint64_t>(s);
    carry = s >> 64;
  }
  return static_cast<std::uint64_t>(carry);
}

std::uint64_t sub(U256& out, const U256& a, const U256& b) {
  std::uint64_t borrow = 0;
  for (int i = 0; i < 4; ++i) {
    const std::uint64_t bi = b.w[i];
    const std::uint64_t d0 = a.w[i] - bi;
    const std::uint64_t borrow1 = a.w[i] < bi ? 1u : 0u;
    const std::uint64_t d1 = d0 - borrow;
    const std::uint64_t borrow2 = d0 < borrow ? 1u : 0u;
    out.w[i] = d1;
    borrow = borrow1 | borrow2;
  }
  return borrow;
}

U256 shr1(const U256& a) {
  U256 out;
  for (int i = 0; i < 4; ++i) {
    out.w[i] = a.w[i] >> 1;
    if (i < 3) out.w[i] |= a.w[i + 1] << 63;
  }
  return out;
}

U256 mont_mul_portable(const U256& a, const U256& b, const U256& m,
                       std::uint64_t n0inv) {
  std::uint64_t t[6] = {0, 0, 0, 0, 0, 0};
  for (int i = 0; i < 4; ++i) {
    // t += a[i] * b
    std::uint64_t carry = 0;
    for (int j = 0; j < 4; ++j) {
      const u128 s = static_cast<u128>(a.w[i]) * b.w[j] + t[j] + carry;
      t[j] = static_cast<std::uint64_t>(s);
      carry = static_cast<std::uint64_t>(s >> 64);
    }
    {
      const u128 s = static_cast<u128>(t[4]) + carry;
      t[4] = static_cast<std::uint64_t>(s);
      t[5] = static_cast<std::uint64_t>(s >> 64);
    }
    // Reduce: t += mu * m, then shift one limb right.
    const std::uint64_t mu = t[0] * n0inv;
    u128 s = static_cast<u128>(mu) * m.w[0] + t[0];
    carry = static_cast<std::uint64_t>(s >> 64);
    for (int j = 1; j < 4; ++j) {
      s = static_cast<u128>(mu) * m.w[j] + t[j] + carry;
      t[j - 1] = static_cast<std::uint64_t>(s);
      carry = static_cast<std::uint64_t>(s >> 64);
    }
    s = static_cast<u128>(t[4]) + carry;
    t[3] = static_cast<std::uint64_t>(s);
    t[4] = t[5] + static_cast<std::uint64_t>(s >> 64);
    t[5] = 0;
  }
  U256 r{{t[0], t[1], t[2], t[3]}};
  // For m < 2^254 the CIOS output is < 2m and t[4] == 0.
  if (t[4] != 0 || cmp(r, m) >= 0) sub(r, r, m);
  return r;
}

U256 mont_redc_portable(const U512& t_in, const U256& m, std::uint64_t n0inv) {
  // Word-by-word REDC over a 9-limb scratch copy: four rounds of adding
  // mu*m at limb i so the low 256 bits cancel, then the high half is the
  // result. t < m*2^256 keeps the result below 2m (one subtract).
  std::uint64_t t[9];
  for (int i = 0; i < 8; ++i) t[i] = t_in.w[i];
  t[8] = 0;
  for (int i = 0; i < 4; ++i) {
    const std::uint64_t mu = t[i] * n0inv;
    std::uint64_t carry = 0;
    for (int j = 0; j < 4; ++j) {
      const u128 s = static_cast<u128>(mu) * m.w[j] + t[i + j] + carry;
      t[i + j] = static_cast<std::uint64_t>(s);
      carry = static_cast<std::uint64_t>(s >> 64);
    }
    for (int j = i + 4; carry != 0 && j < 9; ++j) {
      const u128 s = static_cast<u128>(t[j]) + carry;
      t[j] = static_cast<std::uint64_t>(s);
      carry = static_cast<std::uint64_t>(s >> 64);
    }
  }
  U256 r{{t[4], t[5], t[6], t[7]}};
  if (t[8] != 0 || cmp(r, m) >= 0) sub(r, r, m);
  return r;
}

U512 U512::from_be_bytes(std::span<const std::uint8_t> bytes) {
  if (bytes.size() > 64) throw std::invalid_argument("U512::from_be_bytes: > 64 bytes");
  U512 out;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    const std::size_t bit_pos = 8 * (bytes.size() - 1 - i);
    out.w[bit_pos / 64] |= static_cast<std::uint64_t>(bytes[i]) << (bit_pos % 64);
  }
  return out;
}

U256 mod_inverse(const U256& a, const U256& m) {
  if (a.is_zero() || m.is_even() || cmp(m, U256::from_u64(3)) < 0) {
    throw std::invalid_argument("mod_inverse: need a != 0 and odd modulus >= 3");
  }
  // Binary extended GCD. Invariants: x1*a == u (mod m), x2*a == v (mod m).
  // All of u, v stay <= m; x1, x2 stay < m. The halving step (x + m) / 2 needs
  // one extra bit, which fits because our moduli are at most 254 bits.
  U256 u = a;
  U256 v = m;
  U256 x1 = U256::one();
  U256 x2 = U256::zero();
  const auto half_mod = [&m](U256 x) {
    if (x.is_even()) return shr1(x);
    U256 t;
    const std::uint64_t carry = add(t, x, m);
    t = shr1(t);
    if (carry) t.w[3] |= std::uint64_t{1} << 63;
    return t;
  };
  const auto sub_mod = [&m](const U256& x, const U256& y) {
    U256 t;
    if (sub(t, x, y)) {
      U256 fixed;
      add(fixed, t, m);
      return fixed;
    }
    return t;
  };
  while (!(u == U256::one()) && !(v == U256::one())) {
    while (u.is_even()) {
      u = shr1(u);
      x1 = half_mod(x1);
    }
    while (v.is_even()) {
      v = shr1(v);
      x2 = half_mod(x2);
    }
    if (cmp(u, v) >= 0) {
      sub(u, u, v);
      x1 = sub_mod(x1, x2);
    } else {
      sub(v, v, u);
      x2 = sub_mod(x2, x1);
    }
    if (u.is_zero() || v.is_zero()) {
      throw std::invalid_argument("mod_inverse: inputs not coprime");
    }
  }
  return u == U256::one() ? x1 : x2;
}

}  // namespace mccls::math
