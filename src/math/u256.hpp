// 256-bit fixed-width unsigned integers (little-endian 64-bit limbs) plus the
// 512-bit product type. This is the arithmetic bedrock for the Montgomery
// prime fields in fe.hpp; nothing here knows about moduli.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace mccls::math {

struct U512;

/// Unsigned 256-bit integer, limbs little-endian (w[0] is least significant).
struct U256 {
  std::array<std::uint64_t, 4> w{};

  static constexpr U256 zero() { return U256{}; }
  static constexpr U256 one() { return U256{{1, 0, 0, 0}}; }
  static constexpr U256 from_u64(std::uint64_t x) { return U256{{x, 0, 0, 0}}; }

  /// Parses a hex string (optionally 0x-prefixed, up to 64 digits).
  /// Throws std::invalid_argument on malformed input.
  static U256 from_hex(std::string_view hex);

  /// Big-endian byte deserialization; `bytes.size()` must be <= 32.
  static U256 from_be_bytes(std::span<const std::uint8_t> bytes);

  [[nodiscard]] std::string to_hex() const;
  [[nodiscard]] std::array<std::uint8_t, 32> to_be_bytes() const;

  [[nodiscard]] bool is_zero() const { return (w[0] | w[1] | w[2] | w[3]) == 0; }
  [[nodiscard]] bool is_even() const { return (w[0] & 1) == 0; }
  /// Value of bit `i` (0 = least significant); i must be < 256.
  [[nodiscard]] bool bit(unsigned i) const { return (w[i / 64] >> (i % 64)) & 1; }
  /// Number of significant bits (0 for zero).
  [[nodiscard]] unsigned bit_length() const;

  friend bool operator==(const U256&, const U256&) = default;
};

/// Three-way compare: -1, 0, +1 for a < b, a == b, a > b.
int cmp(const U256& a, const U256& b);

/// out = a + b, returns the carry-out bit.
std::uint64_t add(U256& out, const U256& a, const U256& b);
/// out = a - b, returns the borrow-out bit.
std::uint64_t sub(U256& out, const U256& a, const U256& b);
/// Logical right shift by one bit.
U256 shr1(const U256& a);
/// Full 256x256 -> 512-bit product.
U512 mul_wide(const U256& a, const U256& b);

/// Modular inverse of `a` modulo odd modulus `m` via binary extended GCD.
/// Precondition: gcd(a, m) == 1, a != 0, m odd and >= 3. Returns x with
/// a*x == 1 (mod m).
U256 mod_inverse(const U256& a, const U256& m);

/// Unsigned 512-bit integer used for wide products and hash outputs.
struct U512 {
  std::array<std::uint64_t, 8> w{};

  [[nodiscard]] U256 lo() const { return U256{{w[0], w[1], w[2], w[3]}}; }
  [[nodiscard]] U256 hi() const { return U256{{w[4], w[5], w[6], w[7]}}; }

  static U512 from_halves(const U256& lo, const U256& hi) {
    return U512{{lo.w[0], lo.w[1], lo.w[2], lo.w[3], hi.w[0], hi.w[1], hi.w[2], hi.w[3]}};
  }

  /// Big-endian byte deserialization; `bytes.size()` must be <= 64.
  static U512 from_be_bytes(std::span<const std::uint8_t> bytes);

  friend bool operator==(const U512&, const U512&) = default;
};

}  // namespace mccls::math
