// 256-bit fixed-width unsigned integers (little-endian 64-bit limbs) plus the
// 512-bit product type. This is the arithmetic bedrock for the Montgomery
// prime fields in fe.hpp; nothing here knows about moduli.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace mccls::math {

struct U512;

/// Unsigned 256-bit integer, limbs little-endian (w[0] is least significant).
struct U256 {
  std::array<std::uint64_t, 4> w{};

  static constexpr U256 zero() { return U256{}; }
  static constexpr U256 one() { return U256{{1, 0, 0, 0}}; }
  static constexpr U256 from_u64(std::uint64_t x) { return U256{{x, 0, 0, 0}}; }

  /// Parses a hex string (optionally 0x-prefixed, up to 64 digits).
  /// Throws std::invalid_argument on malformed input.
  static U256 from_hex(std::string_view hex);

  /// Big-endian byte deserialization; `bytes.size()` must be <= 32.
  static U256 from_be_bytes(std::span<const std::uint8_t> bytes);

  [[nodiscard]] std::string to_hex() const;
  [[nodiscard]] std::array<std::uint8_t, 32> to_be_bytes() const;

  [[nodiscard]] bool is_zero() const { return (w[0] | w[1] | w[2] | w[3]) == 0; }
  [[nodiscard]] bool is_even() const { return (w[0] & 1) == 0; }
  /// Value of bit `i` (0 = least significant); i must be < 256.
  [[nodiscard]] bool bit(unsigned i) const { return (w[i / 64] >> (i % 64)) & 1; }
  /// Number of significant bits (0 for zero).
  [[nodiscard]] unsigned bit_length() const;

  friend bool operator==(const U256&, const U256&) = default;
};

/// Three-way compare: -1, 0, +1 for a < b, a == b, a > b.
int cmp(const U256& a, const U256& b);

/// out = a + b, returns the carry-out bit.
std::uint64_t add(U256& out, const U256& a, const U256& b);
/// out = a - b, returns the borrow-out bit.
std::uint64_t sub(U256& out, const U256& a, const U256& b);
/// Logical right shift by one bit.
U256 shr1(const U256& a);

/// Modular inverse of `a` modulo odd modulus `m` via binary extended GCD.
/// Precondition: gcd(a, m) == 1, a != 0, m odd and >= 3. Returns x with
/// a*x == 1 (mod m).
U256 mod_inverse(const U256& a, const U256& m);

/// Unsigned 512-bit integer used for wide products and hash outputs.
struct U512 {
  std::array<std::uint64_t, 8> w{};

  [[nodiscard]] U256 lo() const { return U256{{w[0], w[1], w[2], w[3]}}; }
  [[nodiscard]] U256 hi() const { return U256{{w[4], w[5], w[6], w[7]}}; }

  static U512 from_halves(const U256& lo, const U256& hi) {
    return U512{{lo.w[0], lo.w[1], lo.w[2], lo.w[3], hi.w[0], hi.w[1], hi.w[2], hi.w[3]}};
  }

  /// Big-endian byte deserialization; `bytes.size()` must be <= 64.
  static U512 from_be_bytes(std::span<const std::uint8_t> bytes);

  friend bool operator==(const U512&, const U512&) = default;
};

/// Full 256x256 -> 512-bit product. Header-inline and constexpr: it is the
/// first half of every lazy-reduction multiply, and compile-time use lets
/// field code bake m^2 in as a constant.
constexpr U512 mul_wide(const U256& a, const U256& b) {
  using u128 = unsigned __int128;
  U512 out{};
  for (int i = 0; i < 4; ++i) {
    std::uint64_t carry = 0;
    for (int j = 0; j < 4; ++j) {
      const u128 s = static_cast<u128>(a.w[i]) * b.w[j] + out.w[i + j] + carry;
      out.w[i + j] = static_cast<std::uint64_t>(s);
      carry = static_cast<std::uint64_t>(s >> 64);
    }
    out.w[i + 4] = carry;
  }
  return out;
}

/// Full 256-bit squaring, a^2 -> 512 bits. Computes each off-diagonal
/// product a_i*a_j (i < j) once, doubles the whole accumulator, then adds
/// the diagonal a_i^2 terms: 10 limb products instead of mul_wide's 16.
constexpr U512 sqr_wide(const U256& a) {
  using u128 = unsigned __int128;
  const std::uint64_t a0 = a.w[0], a1 = a.w[1], a2 = a.w[2], a3 = a.w[3];
  // Off-diagonal rows (the mul_wide schedule with j > i only), kept in
  // named locals so the whole accumulator stays in registers.
  u128 c = static_cast<u128>(a0) * a1;
  std::uint64_t w1 = static_cast<std::uint64_t>(c);
  c = static_cast<u128>(a0) * a2 + static_cast<std::uint64_t>(c >> 64);
  std::uint64_t w2 = static_cast<std::uint64_t>(c);
  c = static_cast<u128>(a0) * a3 + static_cast<std::uint64_t>(c >> 64);
  std::uint64_t w3 = static_cast<std::uint64_t>(c);
  std::uint64_t w4 = static_cast<std::uint64_t>(c >> 64);
  c = static_cast<u128>(a1) * a2 + w3;
  w3 = static_cast<std::uint64_t>(c);
  c = static_cast<u128>(a1) * a3 + w4 + static_cast<std::uint64_t>(c >> 64);
  w4 = static_cast<std::uint64_t>(c);
  std::uint64_t w5 = static_cast<std::uint64_t>(c >> 64);
  c = static_cast<u128>(a2) * a3 + w5;
  w5 = static_cast<std::uint64_t>(c);
  std::uint64_t w6 = static_cast<std::uint64_t>(c >> 64);
  // Double. The off-diagonal sum is at most (a^2 - diag)/2 < 2^511, so the
  // bit shifted out of w6 lands in w7 and nothing is lost.
  const std::uint64_t w7 = w6 >> 63;
  w6 = (w6 << 1) | (w5 >> 63);
  w5 = (w5 << 1) | (w4 >> 63);
  w4 = (w4 << 1) | (w3 >> 63);
  w3 = (w3 << 1) | (w2 >> 63);
  w2 = (w2 << 1) | (w1 >> 63);
  w1 <<= 1;
  // Add the diagonal a_i^2 at limbs (2i, 2i+1); a^2 < 2^512 bounds the
  // final carry at zero.
  u128 d = static_cast<u128>(a0) * a0;
  const std::uint64_t o0 = static_cast<std::uint64_t>(d);
  u128 s = static_cast<u128>(w1) + static_cast<std::uint64_t>(d >> 64);
  const std::uint64_t o1 = static_cast<std::uint64_t>(s);
  d = static_cast<u128>(a1) * a1;
  s = static_cast<u128>(w2) + static_cast<std::uint64_t>(d) + static_cast<std::uint64_t>(s >> 64);
  const std::uint64_t o2 = static_cast<std::uint64_t>(s);
  s = static_cast<u128>(w3) + static_cast<std::uint64_t>(d >> 64) + static_cast<std::uint64_t>(s >> 64);
  const std::uint64_t o3 = static_cast<std::uint64_t>(s);
  d = static_cast<u128>(a2) * a2;
  s = static_cast<u128>(w4) + static_cast<std::uint64_t>(d) + static_cast<std::uint64_t>(s >> 64);
  const std::uint64_t o4 = static_cast<std::uint64_t>(s);
  s = static_cast<u128>(w5) + static_cast<std::uint64_t>(d >> 64) + static_cast<std::uint64_t>(s >> 64);
  const std::uint64_t o5 = static_cast<std::uint64_t>(s);
  d = static_cast<u128>(a3) * a3;
  s = static_cast<u128>(w6) + static_cast<std::uint64_t>(d) + static_cast<std::uint64_t>(s >> 64);
  const std::uint64_t o6 = static_cast<std::uint64_t>(s);
  const std::uint64_t o7 =
      w7 + static_cast<std::uint64_t>(d >> 64) + static_cast<std::uint64_t>(s >> 64);
  return U512{{o0, o1, o2, o3, o4, o5, o6, o7}};
}

/// out = a + b over 512 bits, returns the carry-out bit.
constexpr std::uint64_t add512(U512& out, const U512& a, const U512& b) {
  using u128 = unsigned __int128;
  u128 carry = 0;
  for (int i = 0; i < 8; ++i) {
    const u128 s = static_cast<u128>(a.w[i]) + b.w[i] + carry;
    out.w[i] = static_cast<std::uint64_t>(s);
    carry = s >> 64;
  }
  return static_cast<std::uint64_t>(carry);
}

/// out = a - b over 512 bits, returns the borrow-out bit.
constexpr std::uint64_t sub512(U512& out, const U512& a, const U512& b) {
  std::uint64_t borrow = 0;
  for (int i = 0; i < 8; ++i) {
    const std::uint64_t bi = b.w[i];
    const std::uint64_t d0 = a.w[i] - bi;
    const std::uint64_t borrow1 = a.w[i] < bi ? 1u : 0u;
    const std::uint64_t d1 = d0 - borrow;
    const std::uint64_t borrow2 = d0 < borrow ? 1u : 0u;
    out.w[i] = d1;
    borrow = borrow1 | borrow2;
  }
  return borrow;
}

// ---------------------------------------------------------------------------
// Montgomery kernels.
//
// Two implementations of the same contract live side by side:
//
//   * mont_mul_cios<Params> / mont_redc_cios<Params> — fully-unrolled
//     interleaved CIOS with the modulus folded in as compile-time constants.
//     The unrolled form keeps the 5-limb accumulator in registers; on the
//     reference box it runs ~1.8x faster than the limb-array loop.
//   * mont_mul_portable / mont_redc_portable (u256.cpp) — the original
//     loop-and-array form with a runtime modulus. It stays as the
//     differential reference: qa property `montgomery_cios_eq_portable`
//     asserts both agree, and -DMCCLS_PORTABLE_FIELD=ON builds the whole
//     field stack on it.
//
// Both require an odd modulus m < 2^254 (true for Fp and Fq); outputs are
// canonical (< m). REDC inputs must satisfy t < m * 2^256, which callers
// guarantee via the lazy-reduction bounds (see fp2.hpp).

/// Portable interleaved CIOS Montgomery multiply: a * b * 2^-256 mod m.
U256 mont_mul_portable(const U256& a, const U256& b, const U256& m,
                       std::uint64_t n0inv);

/// Portable Montgomery reduction of a 512-bit t < m * 2^256: t * 2^-256 mod m.
U256 mont_redc_portable(const U512& t, const U256& m, std::uint64_t n0inv);

/// Fully-unrolled interleaved CIOS Montgomery multiply with compile-time
/// modulus: returns a * b * 2^-256 mod Params::kMod.
template <class Params>
inline U256 mont_mul_cios(const U256& a, const U256& b) {
  using u128 = unsigned __int128;
  constexpr std::uint64_t m0 = Params::kMod[0], m1 = Params::kMod[1],
                          m2 = Params::kMod[2], m3 = Params::kMod[3];
  constexpr std::uint64_t n0 = Params::kN0Inv;
  const std::uint64_t b0 = b.w[0], b1 = b.w[1], b2 = b.w[2], b3 = b.w[3];
  std::uint64_t t0 = 0, t1 = 0, t2 = 0, t3 = 0, t4 = 0;
  // Each round: t += a[i]*b (5 limbs), then t = (t + mu*m) >> 64 with
  // mu = t[0]*n0 chosen so the low limb cancels. m < 2^254 keeps the
  // accumulator < 2m after every round, so t4 never exceeds one bit.
#define MCCLS_CIOS_ROUND(ai)                                             \
  do {                                                                   \
    u128 c = static_cast<u128>(ai) * b0 + t0;                            \
    const std::uint64_t r0 = static_cast<std::uint64_t>(c);              \
    std::uint64_t carry = static_cast<std::uint64_t>(c >> 64);           \
    c = static_cast<u128>(ai) * b1 + t1 + carry;                         \
    const std::uint64_t r1 = static_cast<std::uint64_t>(c);              \
    carry = static_cast<std::uint64_t>(c >> 64);                         \
    c = static_cast<u128>(ai) * b2 + t2 + carry;                         \
    const std::uint64_t r2 = static_cast<std::uint64_t>(c);              \
    carry = static_cast<std::uint64_t>(c >> 64);                         \
    c = static_cast<u128>(ai) * b3 + t3 + carry;                         \
    const std::uint64_t r3 = static_cast<std::uint64_t>(c);              \
    const std::uint64_t r4 = t4 + static_cast<std::uint64_t>(c >> 64);   \
    const std::uint64_t mu = r0 * n0;                                    \
    c = static_cast<u128>(mu) * m0 + r0;                                 \
    carry = static_cast<std::uint64_t>(c >> 64);                         \
    c = static_cast<u128>(mu) * m1 + r1 + carry;                         \
    t0 = static_cast<std::uint64_t>(c);                                  \
    carry = static_cast<std::uint64_t>(c >> 64);                         \
    c = static_cast<u128>(mu) * m2 + r2 + carry;                         \
    t1 = static_cast<std::uint64_t>(c);                                  \
    carry = static_cast<std::uint64_t>(c >> 64);                         \
    c = static_cast<u128>(mu) * m3 + r3 + carry;                         \
    t2 = static_cast<std::uint64_t>(c);                                  \
    carry = static_cast<std::uint64_t>(c >> 64);                         \
    c = static_cast<u128>(r4) + carry;                                   \
    t3 = static_cast<std::uint64_t>(c);                                  \
    t4 = static_cast<std::uint64_t>(c >> 64);                            \
  } while (0)
  MCCLS_CIOS_ROUND(a.w[0]);
  MCCLS_CIOS_ROUND(a.w[1]);
  MCCLS_CIOS_ROUND(a.w[2]);
  MCCLS_CIOS_ROUND(a.w[3]);
#undef MCCLS_CIOS_ROUND
  U256 r{{t0, t1, t2, t3}};
  constexpr U256 m{Params::kMod};
  if (t4 != 0 || cmp(r, m) >= 0) sub(r, r, m);
  return r;
}

/// Fully-unrolled Montgomery reduction of t < m * 2^256 with compile-time
/// modulus: returns t * 2^-256 mod Params::kMod. This is the second half of
/// a lazy multiply whose 512-bit accumulation already happened.
template <class Params>
inline U256 mont_redc_cios(const U512& t) {
  using u128 = unsigned __int128;
  constexpr std::uint64_t m0 = Params::kMod[0], m1 = Params::kMod[1],
                          m2 = Params::kMod[2], m3 = Params::kMod[3];
  constexpr std::uint64_t n0 = Params::kN0Inv;
  std::uint64_t t0 = t.w[0], t1 = t.w[1], t2 = t.w[2], t3 = t.w[3];
  // k holds the carry that belongs one limb above the sliding 4-limb window;
  // it is consumed when the next high limb shifts in. t < m*2^256 < 2^510
  // bounds the final result below 2m, so k always ends at 0.
  std::uint64_t k = 0;
#define MCCLS_REDC_ROUND(hi)                                             \
  do {                                                                   \
    const std::uint64_t mu = t0 * n0;                                    \
    u128 c = static_cast<u128>(mu) * m0 + t0;                            \
    std::uint64_t carry = static_cast<std::uint64_t>(c >> 64);           \
    c = static_cast<u128>(mu) * m1 + t1 + carry;                         \
    t0 = static_cast<std::uint64_t>(c);                                  \
    carry = static_cast<std::uint64_t>(c >> 64);                         \
    c = static_cast<u128>(mu) * m2 + t2 + carry;                         \
    t1 = static_cast<std::uint64_t>(c);                                  \
    carry = static_cast<std::uint64_t>(c >> 64);                         \
    c = static_cast<u128>(mu) * m3 + t3 + carry;                         \
    t2 = static_cast<std::uint64_t>(c);                                  \
    carry = static_cast<std::uint64_t>(c >> 64);                         \
    c = static_cast<u128>(hi) + carry + k;                               \
    t3 = static_cast<std::uint64_t>(c);                                  \
    k = static_cast<std::uint64_t>(c >> 64);                             \
  } while (0)
  MCCLS_REDC_ROUND(t.w[4]);
  MCCLS_REDC_ROUND(t.w[5]);
  MCCLS_REDC_ROUND(t.w[6]);
  MCCLS_REDC_ROUND(t.w[7]);
#undef MCCLS_REDC_ROUND
  U256 r{{t0, t1, t2, t3}};
  constexpr U256 m{Params::kMod};
  if (k != 0 || cmp(r, m) >= 0) sub(r, r, m);
  return r;
}

}  // namespace mccls::math
