// Montgomery's simultaneous-inversion trick: n field inversions for the
// price of one inversion plus 3(n-1) multiplications. Since a single
// extgcd inversion costs on the order of a hundred multiplications, any
// call site that clusters two or more inversions should batch them.
//
// Works for any field type F exposing F::one(), is_zero(), inv() and
// operator* — i.e. both Fe<Params> (Fp, Fq) and Fp2.
#pragma once

#include <span>
#include <stdexcept>
#include <vector>

namespace mccls::math {

/// Inverts every element of `xs` in place.
/// Throws std::invalid_argument if any element is zero (nothing is modified
/// in that case — the scan happens before the first write-back).
template <class F>
void batch_invert(std::span<F> xs) {
  if (xs.empty()) return;

  // prefix[i] = xs[0] * ... * xs[i]
  std::vector<F> prefix;
  prefix.reserve(xs.size());
  F acc = F::one();
  for (const F& x : xs) {
    if (x.is_zero()) throw std::invalid_argument("batch_invert: zero element");
    acc = acc * x;
    prefix.push_back(acc);
  }

  // Walk back down: inv holds (xs[0]*...*xs[i])^{-1} at step i.
  F inv = prefix.back().inv();
  for (std::size_t i = xs.size(); i-- > 1;) {
    const F xi_inv = inv * prefix[i - 1];
    inv = inv * xs[i];  // strip original xs[i] before overwriting it
    xs[i] = xi_inv;
  }
  xs[0] = inv;
}

/// Convenience overload for owning containers.
template <class F>
void batch_invert(std::vector<F>& xs) {
  batch_invert(std::span<F>(xs));
}

}  // namespace mccls::math
