// Prime-field element in Montgomery form, parameterized by a params bundle
// (field_params.hpp) and a Montgomery-kernel backend. All arithmetic is
// performed on Montgomery residues; the representation only leaves/enters
// Montgomery form at the to_u256/from_* boundary. Moduli are at most 254
// bits, so limb sums never overflow 4 limbs.
//
// The backend selects the multiplier: kCios is the fully-unrolled
// compile-time-modulus kernel (default), kPortable the original loop form
// kept as the differential reference. Both backends share R = 2^256, so the
// raw Montgomery residues of Fe<P, kCios> and Fe<P, kPortable> are
// bit-identical — values convert between the twins via raw()/from_raw.
#pragma once

#include <cstdint>

#include "math/field_params.hpp"
#include "math/u256.hpp"

namespace mccls::math {

enum class FeBackend { kCios, kPortable };

#if defined(MCCLS_PORTABLE_FIELD)
inline constexpr FeBackend kDefaultFeBackend = FeBackend::kPortable;
#else
inline constexpr FeBackend kDefaultFeBackend = FeBackend::kCios;
#endif

template <class Params, FeBackend B = kDefaultFeBackend>
class Fe {
 public:
  static constexpr FeBackend kBackend = B;

  constexpr Fe() = default;

  static Fe zero() { return Fe{}; }
  static Fe one() { return Fe{U256{Params::kR1}}; }
  static const U256& modulus() {
    static const U256 m{Params::kMod};
    return m;
  }

  /// Reduces `x` mod m and converts to Montgomery form.
  static Fe from_u256(const U256& x) {
    U256 r = x;
    // x < 2^256 < 8m for 253+-bit moduli: a short subtraction loop suffices.
    while (cmp(r, modulus()) >= 0) sub(r, r, modulus());
    return Fe{mont_mul(r, U256{Params::kR2})};
  }

  static Fe from_u64(std::uint64_t x) { return from_u256(U256::from_u64(x)); }

  /// Reduces a 512-bit value (e.g. hash output) mod m into Montgomery form.
  static Fe from_wide(const U512& x) {
    // hi * 2^256 mod m: one Montgomery multiply by R^2 (R = 2^256).
    U256 hi_part = mont_mul(x.hi(), U256{Params::kR2});
    U256 lo = x.lo();
    while (cmp(lo, modulus()) >= 0) sub(lo, lo, modulus());
    U256 plain;
    if (add(plain, hi_part, lo) || cmp(plain, modulus()) >= 0) {
      sub(plain, plain, modulus());
    }
    return Fe{mont_mul(plain, U256{Params::kR2})};
  }

  /// Leaves Montgomery form; returns the canonical representative in [0, m).
  [[nodiscard]] U256 to_u256() const { return mont_mul(v_, U256::one()); }

  [[nodiscard]] bool is_zero() const { return v_.is_zero(); }

  friend Fe operator+(const Fe& a, const Fe& b) {
    U256 r;
    add(r, a.v_, b.v_);  // operands < m < 2^254, no carry-out possible
    if (cmp(r, modulus()) >= 0) sub(r, r, modulus());
    return Fe{r};
  }

  friend Fe operator-(const Fe& a, const Fe& b) {
    U256 r;
    if (sub(r, a.v_, b.v_)) add(r, r, modulus());
    return Fe{r};
  }

  friend Fe operator*(const Fe& a, const Fe& b) { return Fe{mont_mul(a.v_, b.v_)}; }

  Fe& operator+=(const Fe& o) { return *this = *this + o; }
  Fe& operator-=(const Fe& o) { return *this = *this - o; }
  Fe& operator*=(const Fe& o) { return *this = *this * o; }

  [[nodiscard]] Fe neg() const {
    if (is_zero()) return *this;
    U256 r;
    sub(r, modulus(), v_);
    return Fe{r};
  }

  [[nodiscard]] Fe square() const {
    // Dedicated squaring on the fast backend: sqr_wide skips the duplicate
    // off-diagonal limb products (10 instead of 16), then one REDC. The
    // portable reference keeps the plain multiply — both reduce to the same
    // canonical residue, so the backends stay bit-identical.
    if constexpr (B == FeBackend::kCios) {
      return Fe{mont_redc_cios<Params>(sqr_wide(v_))};
    } else {
      return *this * *this;
    }
  }

  [[nodiscard]] Fe dbl() const { return *this + *this; }

  /// Multiplicative inverse via binary extended GCD (throws if zero).
  [[nodiscard]] Fe inv() const {
    // v_ = a*R. extgcd gives (a*R)^{-1} = a^{-1} R^{-1}; two Montgomery
    // multiplies by R^2 restore Montgomery form of a^{-1}.
    const U256 raw_inv = mod_inverse(v_, modulus());
    const U256 plain = mont_mul(raw_inv, U256{Params::kR2});
    return Fe{mont_mul(plain, U256{Params::kR2})};
  }

  /// Exponentiation by a plain (non-Montgomery) 256-bit exponent.
  [[nodiscard]] Fe pow(const U256& e) const {
    Fe result = one();
    const unsigned n = e.bit_length();
    for (unsigned i = n; i-- > 0;) {
      result = result.square();
      if (e.bit(i)) result *= *this;
    }
    return result;
  }

  friend bool operator==(const Fe&, const Fe&) = default;

  /// Raw Montgomery limbs (for hashing/serialization of internal state only).
  [[nodiscard]] const U256& raw() const { return v_; }
  static Fe from_raw(const U256& mont) { return Fe{mont}; }

  // --- Lazy-reduction hooks (see fp2.hpp) ---------------------------------

  /// m^2 as a 512-bit compile-time constant. Adding it keeps a difference of
  /// raw products non-negative without changing its value mod m.
  static constexpr U512 kModSquared =
      mul_wide(U256{Params::kMod}, U256{Params::kMod});

  /// Raw double-width product of two residues, no reduction: < m^2.
  static U512 mul_raw(const Fe& a, const Fe& b) { return mul_wide(a.v_, b.v_); }

  /// Montgomery reduction of an accumulated t < m * 2^256; same semantics as
  /// one mont_mul (divides by R), so lazy and eager paths land in the same
  /// representation.
  static Fe redc(const U512& t) {
    if constexpr (B == FeBackend::kCios) {
      return Fe{mont_redc_cios<Params>(t)};
    } else {
      return Fe{mont_redc_portable(t, modulus(), Params::kN0Inv)};
    }
  }

 private:
  explicit constexpr Fe(const U256& v) : v_(v) {}

  /// Montgomery multiplication, a*b*R^{-1} mod m, via the selected backend.
  static U256 mont_mul(const U256& a, const U256& b) {
    if constexpr (B == FeBackend::kCios) {
      return mont_mul_cios<Params>(a, b);
    } else {
      return mont_mul_portable(a, b, modulus(), Params::kN0Inv);
    }
  }

  U256 v_{};  // Montgomery residue, always < modulus
};

using Fp = Fe<FpParams>;
using Fq = Fe<FqParams>;

/// Differential-reference twins on the portable kernel (same residues, same
/// R; only the multiplier differs). Under -DMCCLS_PORTABLE_FIELD these are
/// the same types as Fp/Fq.
using FpPortable = Fe<FpParams, FeBackend::kPortable>;
using FqPortable = Fe<FqParams, FeBackend::kPortable>;

}  // namespace mccls::math
