// Prime-field element in Montgomery form, parameterized by a params bundle
// (field_params.hpp). All arithmetic is performed on Montgomery residues; the
// representation only leaves/enters Montgomery form at the to_u256/from_*
// boundary. Moduli are at most 254 bits, so limb sums never overflow 4 limbs.
#pragma once

#include <cstdint>

#include "math/field_params.hpp"
#include "math/u256.hpp"

namespace mccls::math {

template <class Params>
class Fe {
 public:
  constexpr Fe() = default;

  static Fe zero() { return Fe{}; }
  static Fe one() { return Fe{U256{Params::kR1}}; }
  static const U256& modulus() {
    static const U256 m{Params::kMod};
    return m;
  }

  /// Reduces `x` mod m and converts to Montgomery form.
  static Fe from_u256(const U256& x) {
    U256 r = x;
    // x < 2^256 < 8m for 253+-bit moduli: a short subtraction loop suffices.
    while (cmp(r, modulus()) >= 0) sub(r, r, modulus());
    return Fe{mont_mul(r, U256{Params::kR2})};
  }

  static Fe from_u64(std::uint64_t x) { return from_u256(U256::from_u64(x)); }

  /// Reduces a 512-bit value (e.g. hash output) mod m into Montgomery form.
  static Fe from_wide(const U512& x) {
    // hi * 2^256 mod m: one Montgomery multiply by R^2 (R = 2^256).
    U256 hi_part = mont_mul(x.hi(), U256{Params::kR2});
    U256 lo = x.lo();
    while (cmp(lo, modulus()) >= 0) sub(lo, lo, modulus());
    U256 plain;
    if (add(plain, hi_part, lo) || cmp(plain, modulus()) >= 0) {
      sub(plain, plain, modulus());
    }
    return Fe{mont_mul(plain, U256{Params::kR2})};
  }

  /// Leaves Montgomery form; returns the canonical representative in [0, m).
  [[nodiscard]] U256 to_u256() const { return mont_mul(v_, U256::one()); }

  [[nodiscard]] bool is_zero() const { return v_.is_zero(); }

  friend Fe operator+(const Fe& a, const Fe& b) {
    U256 r;
    add(r, a.v_, b.v_);  // operands < m < 2^254, no carry-out possible
    if (cmp(r, modulus()) >= 0) sub(r, r, modulus());
    return Fe{r};
  }

  friend Fe operator-(const Fe& a, const Fe& b) {
    U256 r;
    if (sub(r, a.v_, b.v_)) add(r, r, modulus());
    return Fe{r};
  }

  friend Fe operator*(const Fe& a, const Fe& b) { return Fe{mont_mul(a.v_, b.v_)}; }

  Fe& operator+=(const Fe& o) { return *this = *this + o; }
  Fe& operator-=(const Fe& o) { return *this = *this - o; }
  Fe& operator*=(const Fe& o) { return *this = *this * o; }

  [[nodiscard]] Fe neg() const {
    if (is_zero()) return *this;
    U256 r;
    sub(r, modulus(), v_);
    return Fe{r};
  }

  [[nodiscard]] Fe square() const { return *this * *this; }

  [[nodiscard]] Fe dbl() const { return *this + *this; }

  /// Multiplicative inverse via binary extended GCD (throws if zero).
  [[nodiscard]] Fe inv() const {
    // v_ = a*R. extgcd gives (a*R)^{-1} = a^{-1} R^{-1}; two Montgomery
    // multiplies by R^2 restore Montgomery form of a^{-1}.
    const U256 raw_inv = mod_inverse(v_, modulus());
    const U256 plain = mont_mul(raw_inv, U256{Params::kR2});
    return Fe{mont_mul(plain, U256{Params::kR2})};
  }

  /// Exponentiation by a plain (non-Montgomery) 256-bit exponent.
  [[nodiscard]] Fe pow(const U256& e) const {
    Fe result = one();
    const unsigned n = e.bit_length();
    for (unsigned i = n; i-- > 0;) {
      result = result.square();
      if (e.bit(i)) result *= *this;
    }
    return result;
  }

  friend bool operator==(const Fe&, const Fe&) = default;

  /// Raw Montgomery limbs (for hashing/serialization of internal state only).
  [[nodiscard]] const U256& raw() const { return v_; }
  static Fe from_raw(const U256& mont) { return Fe{mont}; }

 private:
  explicit constexpr Fe(const U256& v) : v_(v) {}

  /// CIOS Montgomery multiplication: returns a*b*R^{-1} mod m.
  static U256 mont_mul(const U256& a, const U256& b) {
    using u128 = unsigned __int128;
    const U256 m{Params::kMod};
    std::uint64_t t[6] = {0, 0, 0, 0, 0, 0};
    for (int i = 0; i < 4; ++i) {
      // t += a[i] * b
      std::uint64_t carry = 0;
      for (int j = 0; j < 4; ++j) {
        const u128 s = static_cast<u128>(a.w[i]) * b.w[j] + t[j] + carry;
        t[j] = static_cast<std::uint64_t>(s);
        carry = static_cast<std::uint64_t>(s >> 64);
      }
      {
        const u128 s = static_cast<u128>(t[4]) + carry;
        t[4] = static_cast<std::uint64_t>(s);
        t[5] = static_cast<std::uint64_t>(s >> 64);
      }
      // Reduce: t += mu * m, then shift one limb right.
      const std::uint64_t mu = t[0] * Params::kN0Inv;
      u128 s = static_cast<u128>(mu) * m.w[0] + t[0];
      carry = static_cast<std::uint64_t>(s >> 64);
      for (int j = 1; j < 4; ++j) {
        s = static_cast<u128>(mu) * m.w[j] + t[j] + carry;
        t[j - 1] = static_cast<std::uint64_t>(s);
        carry = static_cast<std::uint64_t>(s >> 64);
      }
      s = static_cast<u128>(t[4]) + carry;
      t[3] = static_cast<std::uint64_t>(s);
      t[4] = t[5] + static_cast<std::uint64_t>(s >> 64);
      t[5] = 0;
    }
    U256 r{{t[0], t[1], t[2], t[3]}};
    // For m < 2^254 the CIOS output is < 2m and t[4] == 0.
    if (t[4] != 0 || cmp(r, m) >= 0) sub(r, r, m);
    return r;
  }

  U256 v_{};  // Montgomery residue, always < modulus
};

using Fp = Fe<FpParams>;
using Fq = Fe<FqParams>;

}  // namespace mccls::math
