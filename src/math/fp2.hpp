// Quadratic extension Fp2 = Fp[u] / (u^2 + 1). Irreducible because the base
// prime satisfies p ≡ 3 (mod 4), so -1 is a quadratic non-residue. This is
// the codomain of the modified Tate pairing (embedding degree k = 2); the
// Frobenius map x -> x^p coincides with conjugation, which the pairing's
// final exponentiation exploits.
//
// Fe2 is parameterized on the base-field type so the portable-backend twin
// (Fe2<FpPortable>) shares this code. On the CIOS backend, operator* uses
// lazy reduction: the three Karatsuba limb products are accumulated as raw
// 512-bit integers and reduced once per output coefficient (2 REDCs instead
// of 3 full Montgomery multiplies' worth of interleaved reduction). Bounds,
// with m < 2^254 and reduced inputs:
//   t0, t1 < m^2;  (a0+a1), (b0+b1) < 2m  =>  t2 < 4m^2 < m * 2^256;
//   re = t0 + m^2 - t1 in [0, 2m^2);  im = t2 - t0 - t1 in [0, 2m^2);
// so every REDC input stays below m * 2^256 as required.
#pragma once

#include "math/fe.hpp"

namespace mccls::math {

template <class F>
class Fe2 {
 public:
  using Base = F;

  constexpr Fe2() = default;
  Fe2(const F& a, const F& b) : a_(a), b_(b) {}

  static Fe2 zero() { return Fe2{}; }
  static Fe2 one() { return Fe2{F::one(), F::zero()}; }
  static Fe2 from_fp(const F& a) { return Fe2{a, F::zero()}; }

  [[nodiscard]] const F& re() const { return a_; }
  [[nodiscard]] const F& im() const { return b_; }

  [[nodiscard]] bool is_zero() const { return a_.is_zero() && b_.is_zero(); }
  [[nodiscard]] bool is_one() const { return *this == one(); }

  friend Fe2 operator+(const Fe2& x, const Fe2& y) { return {x.a_ + y.a_, x.b_ + y.b_}; }
  friend Fe2 operator-(const Fe2& x, const Fe2& y) { return {x.a_ - y.a_, x.b_ - y.b_}; }

  friend Fe2 operator*(const Fe2& x, const Fe2& y) {
    if constexpr (F::kBackend == FeBackend::kCios) {
      return mul_lazy(x, y);
    } else {
      return mul_eager(x, y);
    }
  }

  /// Karatsuba with one reduction per base multiply (3 total). Kept callable
  /// on any backend as the reference for the lazy path.
  static Fe2 mul_eager(const Fe2& x, const Fe2& y) {
    const F t0 = x.a_ * y.a_;
    const F t1 = x.b_ * y.b_;
    const F t2 = (x.a_ + x.b_) * (y.a_ + y.b_);
    return {t0 - t1, t2 - t0 - t1};
  }

  /// Karatsuba with unreduced double-width accumulation: 3 wide products,
  /// 2 REDCs. Identical result to mul_eager (both compute a*b*R^-1 per
  /// coefficient); the qa property fp2_lazy_eq_eager pins this down.
  static Fe2 mul_lazy(const Fe2& x, const Fe2& y) {
    const U512 t0 = F::mul_raw(x.a_, y.a_);
    const U512 t1 = F::mul_raw(x.b_, y.b_);
    U256 sx, sy;
    add(sx, x.a_.raw(), x.b_.raw());  // < 2m < 2^255: no carry-out
    add(sy, y.a_.raw(), y.b_.raw());
    const U512 t2 = mul_wide(sx, sy);
    // re = t0 - t1 mod m, lifted non-negative by adding m^2.
    U512 re;
    sub512(re, F::kModSquared, t1);
    add512(re, re, t0);
    // im = t2 - t0 - t1; non-negative as integers (t2 = t0 + t1 + cross terms).
    U512 im;
    sub512(im, t2, t0);
    sub512(im, im, t1);
    return {F::redc(re), F::redc(im)};
  }

  Fe2& operator+=(const Fe2& o) { return *this = *this + o; }
  Fe2& operator-=(const Fe2& o) { return *this = *this - o; }
  Fe2& operator*=(const Fe2& o) { return *this = *this * o; }

  [[nodiscard]] Fe2 neg() const { return {a_.neg(), b_.neg()}; }

  [[nodiscard]] Fe2 square() const {
    // (a + bu)^2 = (a+b)(a-b) + 2ab u.
    const F t0 = (a_ + b_) * (a_ - b_);
    const F t1 = a_ * b_;
    return {t0, t1.dbl()};
  }

  /// Complex conjugate a - bu; equals the p-power Frobenius on Fp2.
  [[nodiscard]] Fe2 conjugate() const { return {a_, b_.neg()}; }

  /// Field norm a^2 + b^2 (an Fp element).
  [[nodiscard]] F norm() const { return a_.square() + b_.square(); }

  [[nodiscard]] Fe2 inv() const {
    const F n_inv = norm().inv();
    return {a_ * n_inv, b_.neg() * n_inv};
  }

  [[nodiscard]] Fe2 pow(const U256& e) const {
    Fe2 result = one();
    const unsigned n = e.bit_length();
    for (unsigned i = n; i-- > 0;) {
      result = result.square();
      if (e.bit(i)) result *= *this;
    }
    return result;
  }

  friend bool operator==(const Fe2&, const Fe2&) = default;

 private:
  F a_{};  // real part
  F b_{};  // coefficient of u
};

using Fp2 = Fe2<Fp>;
/// Portable-backend twin; the differential reference for qa properties.
using Fp2Portable = Fe2<FpPortable>;

}  // namespace mccls::math
