// Quadratic extension Fp2 = Fp[u] / (u^2 + 1). Irreducible because the base
// prime satisfies p ≡ 3 (mod 4), so -1 is a quadratic non-residue. This is
// the codomain of the modified Tate pairing (embedding degree k = 2); the
// Frobenius map x -> x^p coincides with conjugation, which the pairing's
// final exponentiation exploits.
#pragma once

#include "math/fe.hpp"

namespace mccls::math {

class Fp2 {
 public:
  constexpr Fp2() = default;
  Fp2(const Fp& a, const Fp& b) : a_(a), b_(b) {}

  static Fp2 zero() { return Fp2{}; }
  static Fp2 one() { return Fp2{Fp::one(), Fp::zero()}; }
  static Fp2 from_fp(const Fp& a) { return Fp2{a, Fp::zero()}; }

  [[nodiscard]] const Fp& re() const { return a_; }
  [[nodiscard]] const Fp& im() const { return b_; }

  [[nodiscard]] bool is_zero() const { return a_.is_zero() && b_.is_zero(); }
  [[nodiscard]] bool is_one() const { return *this == one(); }

  friend Fp2 operator+(const Fp2& x, const Fp2& y) { return {x.a_ + y.a_, x.b_ + y.b_}; }
  friend Fp2 operator-(const Fp2& x, const Fp2& y) { return {x.a_ - y.a_, x.b_ - y.b_}; }

  friend Fp2 operator*(const Fp2& x, const Fp2& y) {
    // Karatsuba: 3 base-field multiplications.
    const Fp t0 = x.a_ * y.a_;
    const Fp t1 = x.b_ * y.b_;
    const Fp t2 = (x.a_ + x.b_) * (y.a_ + y.b_);
    return {t0 - t1, t2 - t0 - t1};
  }

  Fp2& operator+=(const Fp2& o) { return *this = *this + o; }
  Fp2& operator-=(const Fp2& o) { return *this = *this - o; }
  Fp2& operator*=(const Fp2& o) { return *this = *this * o; }

  [[nodiscard]] Fp2 neg() const { return {a_.neg(), b_.neg()}; }

  [[nodiscard]] Fp2 square() const {
    // (a + bu)^2 = (a+b)(a-b) + 2ab u.
    const Fp t0 = (a_ + b_) * (a_ - b_);
    const Fp t1 = a_ * b_;
    return {t0, t1.dbl()};
  }

  /// Complex conjugate a - bu; equals the p-power Frobenius on Fp2.
  [[nodiscard]] Fp2 conjugate() const { return {a_, b_.neg()}; }

  /// Field norm a^2 + b^2 (an Fp element).
  [[nodiscard]] Fp norm() const { return a_.square() + b_.square(); }

  [[nodiscard]] Fp2 inv() const {
    const Fp n_inv = norm().inv();
    return {a_ * n_inv, b_.neg() * n_inv};
  }

  [[nodiscard]] Fp2 pow(const U256& e) const {
    Fp2 result = one();
    const unsigned n = e.bit_length();
    for (unsigned i = n; i-- > 0;) {
      result = result.square();
      if (e.bit(i)) result *= *this;
    }
    return result;
  }

  friend bool operator==(const Fp2&, const Fp2&) = default;

 private:
  Fp a_{};  // real part
  Fp b_{};  // coefficient of u
};

}  // namespace mccls::math
